//! Memoized automaton cache and parallel batch refinement checking.
//!
//! The Def.-2 condition-3 check and the Def.-4/11 composition pipeline
//! are built from three expensive ingredients: enumerating the canonical
//! finitization of an alphabet ([`EventSet::enumerate_concrete`]),
//! building the automaton view of a trace set ([`traceset_dfa`]), and
//! lifting that view to a larger alphabet (`lift_to`).  The meta-theory
//! suite and `paper_report` issue hundreds of near-identical queries, so
//! [`DfaCache`] interns all three — extending the per-instance `OnceLock`
//! memoization of [`ComposedSet`](crate::ComposedSet) to a query-keyed
//! map shared by every check.
//!
//! Keys are **structural wherever the backend permits**:
//!
//! * an alphabet is interned to a dense [`AlphaId`] keyed by its universe
//!   identity plus its exact granule set (granules are canonical, so
//!   structurally equal `EventSet`s rebuilt by different callers share
//!   one id, one enumeration, and one `Arc` — making downstream alphabet
//!   equality an O(1) pointer check);
//! * a trace set is keyed by content: `prs` sets by their regex AST,
//!   conjunctions and compositions recursively.  Rebuilding an equal
//!   specification from scratch therefore *hits*.  Opaque predicate
//!   closures and explicit DFAs have no inspectable structure and keep
//!   `Arc`-pointer identity (the cache pins a clone of each keyed set, so
//!   a key can never be revived by a reallocated `Arc`);
//! * automaton entries additionally carry the predicate-trie depth.
//!
//! Every automaton is **Hopcroft-minimized** before it is cached
//! ([`ConcreteDfa::minimize`]), so products, lifts and inclusion walks
//! downstream run on the smallest equivalent machines.  The cached
//! refinement check itself never materializes the lifted abstract
//! automaton: [`check_refinement_cached`] runs the **on-the-fly**
//! inclusion engine (`pospec_regex::lazy_lifted_inclusion`), which
//! explores the product `A × ¬lift(B)` lazily and stops at the first
//! counterexample — verdicts and witnesses stay identical to the eager
//! [`crate::check_refinement`].
//!
//! Entries are `OnceLock`-guarded, so concurrent batch workers that race
//! on the same key block on one build instead of duplicating it.
//! Hit/miss/build-time, minimization, and on-the-fly search counters are
//! exported via [`CacheStats`] and surface in `paper_report.json` and the
//! service's `stats` response.

use crate::parallel::parallel_map_ref;
use crate::persist::PersistentStore;
use crate::refine::{
    condition3_verdict_lazy, refinement_conditions, FailedCondition, OtfOutcome, Verdict,
};
use crate::spec::Specification;
use crate::traceset::{traceset_dfa, TraceSet};
use pospec_alphabet::{EventGranule, EventSet, Universe};
use pospec_regex::{ConcreteDfa, Re};
use std::collections::hash_map::Entry as MapEntry;
use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Dense id of an interned alphabet (index into the cache's arena).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
struct AlphaId(u32);

/// Key of a trace-set backend: structural where the backend is
/// inspectable, `Arc` identity for opaque closures and explicit DFAs.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum TsKey {
    Universal,
    /// The regex AST itself: rebuilt-but-equal expressions share a key.
    Prs(Re),
    /// Closure identity (pinned).
    Predicate(usize),
    Conj(Vec<TsKey>),
    /// Operand keys, operand alphabets, and the hiding split — the full
    /// structure of Def. 4/11, so an equal composition rebuilt from
    /// scratch shares the entry.
    Composed {
        left: Box<TsKey>,
        right: Box<TsKey>,
        left_alpha: AlphaId,
        right_alpha: AlphaId,
        hidden: Vec<EventGranule>,
        visible: Vec<EventGranule>,
    },
    /// Automaton identity (pinned).
    Dfa(usize),
}

/// Identity key of a finitized alphabet: universe pointer + exact
/// granule set.  Granules are canonical, so two structurally equal
/// `EventSet`s over one universe share a key (and one enumeration).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct AlphaKey {
    universe: usize,
    granules: Vec<EventGranule>,
}

fn alpha_key(set: &EventSet) -> AlphaKey {
    AlphaKey {
        universe: Arc::as_ptr(set.universe()) as usize,
        granules: set.granules().copied().collect(),
    }
}

/// One interned alphabet: the universe pin (keeping the pointer half of
/// [`AlphaKey`] stable) and the lazily-built enumeration.
struct AlphaEntry {
    /// Held only to keep the universe address (half of the key) alive.
    _universe: Arc<Universe>,
    sigma: Option<Arc<Vec<Event>>>,
}

use pospec_trace::Event;

#[derive(Default)]
struct AlphaIntern {
    ids: HashMap<AlphaKey, AlphaId>,
    arena: Vec<AlphaEntry>,
}

type DfaSlot = Arc<OnceLock<Arc<ConcreteDfa>>>;

/// A snapshot of the cache's counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Alphabet-enumeration lookups served from the cache.
    pub alphabet_hits: u64,
    /// Alphabet enumerations performed.
    pub alphabet_misses: u64,
    /// Trace-set automaton lookups served from the cache.
    pub dfa_hits: u64,
    /// Trace-set automata built.
    pub dfa_misses: u64,
    /// Lifted-automaton lookups served from the cache.
    pub lift_hits: u64,
    /// Lifted automata built.
    pub lift_misses: u64,
    /// Total nanoseconds spent building cache entries (misses only).
    pub build_nanos: u64,
    /// Hopcroft minimization passes run while building entries.
    pub min_builds: u64,
    /// States entering minimization (sum over all passes).
    pub min_states_in: u64,
    /// States surviving minimization (sum over all passes).
    pub min_states_out: u64,
    /// On-the-fly inclusion searches run by the cached checker.
    pub otf_checks: u64,
    /// Searches that stopped early at a counterexample.
    pub otf_early_exits: u64,
    /// Product states explored across all on-the-fly searches.
    pub otf_explored: u64,
    /// Automata served from the attached persistent store (each also
    /// counts as a `dfa_hits`/`lift_hits`, never as a miss).
    pub disk_hits: u64,
    /// Automata written through to the persistent store.
    pub disk_writes: u64,
    /// Persistent entries skipped as corrupt, version-mismatched, or
    /// key-mismatched (load + probe time).
    pub disk_skipped: u64,
}

impl CacheStats {
    /// All hits across the three maps.
    pub fn hits(&self) -> u64 {
        self.alphabet_hits + self.dfa_hits + self.lift_hits
    }

    /// All misses across the three maps.
    pub fn misses(&self) -> u64 {
        self.alphabet_misses + self.dfa_misses + self.lift_misses
    }

    /// Entries built — every miss claims its slot and builds exactly
    /// once (concurrent racers block on the winner's `OnceLock`).
    pub fn builds(&self) -> u64 {
        self.misses()
    }

    /// Time spent building entries.
    pub fn build_time(&self) -> Duration {
        Duration::from_nanos(self.build_nanos)
    }

    /// States removed by minimization across all builds.
    pub fn min_states_removed(&self) -> u64 {
        self.min_states_in.saturating_sub(self.min_states_out)
    }

    /// Counter deltas since an earlier snapshot.
    pub fn since(&self, earlier: &CacheStats) -> CacheStats {
        CacheStats {
            alphabet_hits: self.alphabet_hits - earlier.alphabet_hits,
            alphabet_misses: self.alphabet_misses - earlier.alphabet_misses,
            dfa_hits: self.dfa_hits - earlier.dfa_hits,
            dfa_misses: self.dfa_misses - earlier.dfa_misses,
            lift_hits: self.lift_hits - earlier.lift_hits,
            lift_misses: self.lift_misses - earlier.lift_misses,
            build_nanos: self.build_nanos - earlier.build_nanos,
            min_builds: self.min_builds - earlier.min_builds,
            min_states_in: self.min_states_in - earlier.min_states_in,
            min_states_out: self.min_states_out - earlier.min_states_out,
            otf_checks: self.otf_checks - earlier.otf_checks,
            otf_early_exits: self.otf_early_exits - earlier.otf_early_exits,
            otf_explored: self.otf_explored - earlier.otf_explored,
            disk_hits: self.disk_hits - earlier.disk_hits,
            disk_writes: self.disk_writes - earlier.disk_writes,
            disk_skipped: self.disk_skipped - earlier.disk_skipped,
        }
    }
}

/// Memoized automaton cache; see the module documentation.
#[derive(Default)]
pub struct DfaCache {
    alphabets: Mutex<AlphaIntern>,
    dfas: Mutex<HashMap<(TsKey, AlphaId, usize), DfaSlot>>,
    lifted: Mutex<HashMap<(TsKey, AlphaId, AlphaId, usize), DfaSlot>>,
    /// Clones of every identity-keyed trace set, pinning the `Arc`s whose
    /// addresses serve as keys (universes are pinned by the arena).
    pinned_sets: Mutex<Vec<TraceSet>>,
    /// Optional write-through persistent store; see [`DfaCache::attach_store`].
    store: OnceLock<Arc<PersistentStore>>,
    /// Memoized universe fingerprints (keyed by pinned `Arc` address),
    /// part of every on-disk key.
    universe_fps: Mutex<HashMap<usize, u64>>,
    alphabet_hits: AtomicU64,
    alphabet_misses: AtomicU64,
    dfa_hits: AtomicU64,
    dfa_misses: AtomicU64,
    lift_hits: AtomicU64,
    lift_misses: AtomicU64,
    build_nanos: AtomicU64,
    min_builds: AtomicU64,
    min_states_in: AtomicU64,
    min_states_out: AtomicU64,
    otf_checks: AtomicU64,
    otf_early_exits: AtomicU64,
    otf_explored: AtomicU64,
    disk_hits: AtomicU64,
}

impl DfaCache {
    /// A fresh, empty cache.
    pub fn new() -> Self {
        DfaCache::default()
    }

    /// The process-wide shared cache.
    pub fn global() -> &'static DfaCache {
        static GLOBAL: OnceLock<DfaCache> = OnceLock::new();
        GLOBAL.get_or_init(DfaCache::new)
    }

    /// Attach a persistent on-disk store: content-keyed automata built
    /// from now on are written through (atomically), and probes for
    /// entries the store already holds are served from disk instead of
    /// rebuilt — so a restarted process comes up warm.  Identity-keyed
    /// trace sets (opaque predicates, explicit DFAs) stay memory-only.
    /// A second attach on the same cache is ignored.
    pub fn attach_store(&self, store: Arc<PersistentStore>) {
        let _ = self.store.set(store);
    }

    /// The attached persistent store, if any.
    pub fn store(&self) -> Option<&Arc<PersistentStore>> {
        self.store.get()
    }

    /// Intern `set`'s structural key, without enumerating it.
    fn alpha_id(&self, set: &EventSet) -> AlphaId {
        let key = alpha_key(set);
        let mut intern = self.alphabets.lock().unwrap_or_else(|e| e.into_inner());
        let AlphaIntern { ids, arena } = &mut *intern;
        match ids.entry(key) {
            MapEntry::Occupied(slot) => *slot.get(),
            MapEntry::Vacant(slot) => {
                let id = AlphaId(arena.len() as u32);
                arena.push(AlphaEntry { _universe: Arc::clone(set.universe()), sigma: None });
                *slot.insert(id)
            }
        }
    }

    /// The canonical finitization of `set`, interned: one `Arc` per
    /// structural alphabet, so alphabet equality downstream is a pointer
    /// comparison.
    pub fn alphabet(&self, set: &EventSet) -> Arc<Vec<Event>> {
        let id = self.alpha_id(set);
        let mut intern = self.alphabets.lock().unwrap_or_else(|e| e.into_inner());
        let entry = &mut intern.arena[id.0 as usize];
        if let Some(sigma) = &entry.sigma {
            self.alphabet_hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(sigma);
        }
        self.alphabet_misses.fetch_add(1, Ordering::Relaxed);
        let start = Instant::now();
        let sigma = Arc::new(set.enumerate_concrete());
        self.build_nanos.fetch_add(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
        entry.sigma = Some(Arc::clone(&sigma));
        sigma
    }

    /// The structural key of `ts`; interns component alphabets of
    /// compositions along the way.
    fn ts_key(&self, ts: &TraceSet) -> TsKey {
        match ts {
            TraceSet::Universal => TsKey::Universal,
            TraceSet::Prs(re) => TsKey::Prs(re.re().clone()),
            TraceSet::Predicate { pred, .. } => {
                TsKey::Predicate(Arc::as_ptr(pred) as *const () as usize)
            }
            TraceSet::Conj(parts) => TsKey::Conj(parts.iter().map(|p| self.ts_key(p)).collect()),
            TraceSet::Composed(c) => TsKey::Composed {
                left: Box::new(self.ts_key(c.left.trace_set())),
                right: Box::new(self.ts_key(c.right.trace_set())),
                left_alpha: self.alpha_id(c.left.alphabet()),
                right_alpha: self.alpha_id(c.right.alphabet()),
                hidden: c.hidden.granules().copied().collect(),
                visible: c.visible.granules().copied().collect(),
            },
            TraceSet::Dfa(d) => TsKey::Dfa(Arc::as_ptr(d) as usize),
        }
    }

    /// Does `ts` contain an identity-keyed (unpinnable-by-content)
    /// backend anywhere?
    fn needs_pin(ts: &TraceSet) -> bool {
        match ts {
            TraceSet::Universal | TraceSet::Prs(_) => false,
            TraceSet::Predicate { .. } | TraceSet::Dfa(_) => true,
            TraceSet::Conj(parts) => parts.iter().any(Self::needs_pin),
            TraceSet::Composed(c) => {
                Self::needs_pin(c.left.trace_set()) || Self::needs_pin(c.right.trace_set())
            }
        }
    }

    /// Claim the slot for `key` without touching the hit/miss counters;
    /// the second component is `true` iff this call inserted the slot
    /// (the caller decides whether that vacancy is a disk hit or a miss).
    fn claim<K: std::hash::Hash + Eq>(
        &self,
        map: &Mutex<HashMap<K, DfaSlot>>,
        key: K,
        pin: &TraceSet,
    ) -> (DfaSlot, bool) {
        let mut map = map.lock().unwrap_or_else(|e| e.into_inner());
        match map.entry(key) {
            MapEntry::Occupied(slot) => (Arc::clone(slot.get()), false),
            MapEntry::Vacant(slot) => {
                if Self::needs_pin(pin) {
                    self.pinned_sets.lock().unwrap_or_else(|e| e.into_inner()).push(pin.clone());
                }
                (Arc::clone(slot.insert(Arc::new(OnceLock::new()))), true)
            }
        }
    }

    /// The FNV-64 fingerprint of the universe's canonical description
    /// (declaration order only — `Debug` would leak per-process
    /// hash-map iteration order), memoized per pinned `Arc` address.
    /// Part of every on-disk key, so entries from a structurally
    /// different universe can never match.
    fn universe_fingerprint(&self, u: &Arc<Universe>) -> u64 {
        let ptr = Arc::as_ptr(u) as usize;
        let mut fps = self.universe_fps.lock().unwrap_or_else(|e| e.into_inner());
        *fps.entry(ptr)
            .or_insert_with(|| crate::persist::fnv64(u.canonical_description().as_bytes()))
    }

    /// Append the canonical persistent form of `set`'s granule set.
    /// Granule iteration is canonical and every granule type derives
    /// `Debug` deterministically, so structurally equal alphabets render
    /// identically across processes.
    fn canon_alpha(out: &mut String, set: &EventSet) {
        let granules: Vec<EventGranule> = set.granules().copied().collect();
        let _ = write!(out, "{granules:?}");
    }

    /// Append the canonical persistent form of `ts`, or return `false`
    /// when `ts` contains an identity-keyed backend anywhere (process-
    /// local `Arc` addresses have no cross-process meaning, so such sets
    /// are never persisted).  Unlike [`TsKey`], compositions embed their
    /// operand alphabets *structurally* — `AlphaId`s are process-local.
    fn canon_ts(out: &mut String, ts: &TraceSet) -> bool {
        match ts {
            TraceSet::Universal => {
                out.push('U');
                true
            }
            TraceSet::Prs(re) => {
                let _ = write!(out, "P({:?})", re.re());
                true
            }
            TraceSet::Predicate { .. } | TraceSet::Dfa(_) => false,
            TraceSet::Conj(parts) => {
                out.push_str("C(");
                for p in parts.iter() {
                    if !Self::canon_ts(out, p) {
                        return false;
                    }
                    out.push(',');
                }
                out.push(')');
                true
            }
            TraceSet::Composed(c) => {
                out.push_str("X(");
                if !Self::canon_ts(out, c.left.trace_set()) {
                    return false;
                }
                out.push('@');
                Self::canon_alpha(out, c.left.alphabet());
                out.push('|');
                if !Self::canon_ts(out, c.right.trace_set()) {
                    return false;
                }
                out.push('@');
                Self::canon_alpha(out, c.right.alphabet());
                let hidden: Vec<EventGranule> = c.hidden.granules().copied().collect();
                let visible: Vec<EventGranule> = c.visible.granules().copied().collect();
                let _ = write!(out, "|H{hidden:?}|V{visible:?})");
                true
            }
        }
    }

    /// The canonical on-disk key for an automaton query, or `None` when
    /// no store is attached or the trace set is not content-addressable.
    fn persist_key(
        &self,
        kind: &str,
        u: &Arc<Universe>,
        ts: &TraceSet,
        alpha: &EventSet,
        big: Option<&EventSet>,
        pred_depth: usize,
    ) -> Option<String> {
        self.store.get()?;
        let mut key = String::new();
        let _ = write!(
            key,
            "v{}|{kind}|d{pred_depth}|u{:016x}|A",
            crate::persist::FORMAT_VERSION,
            self.universe_fingerprint(u)
        );
        Self::canon_alpha(&mut key, alpha);
        if let Some(big) = big {
            key.push_str("|B");
            Self::canon_alpha(&mut key, big);
        }
        key.push_str("|T");
        if !Self::canon_ts(&mut key, ts) {
            return None;
        }
        Some(key)
    }

    /// Build an entry, Hopcroft-minimize it, and account for both.
    fn timed_build(&self, build: impl FnOnce() -> ConcreteDfa) -> Arc<ConcreteDfa> {
        let start = Instant::now();
        let raw = build();
        let min = raw.minimize();
        self.min_builds.fetch_add(1, Ordering::Relaxed);
        self.min_states_in.fetch_add(raw.state_count() as u64, Ordering::Relaxed);
        self.min_states_out.fetch_add(min.state_count() as u64, Ordering::Relaxed);
        self.build_nanos.fetch_add(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
        Arc::new(min)
    }

    fn record_otf(&self, otf: OtfOutcome) {
        self.otf_checks.fetch_add(1, Ordering::Relaxed);
        if otf.early_exit {
            self.otf_early_exits.fetch_add(1, Ordering::Relaxed);
        }
        self.otf_explored.fetch_add(otf.explored, Ordering::Relaxed);
    }

    /// The automaton view of `ts` over the finitization of `alpha`,
    /// interned and minimized.  Language-equal to [`traceset_dfa`] on a
    /// miss.
    pub fn traceset_dfa(
        &self,
        u: &Arc<Universe>,
        ts: &TraceSet,
        alpha: &EventSet,
        pred_depth: usize,
    ) -> Arc<ConcreteDfa> {
        let key = (self.ts_key(ts), self.alpha_id(alpha), pred_depth);
        let (slot, inserted) = self.claim(&self.dfas, key, ts);
        let sigma = self.alphabet(alpha);
        if !inserted {
            self.dfa_hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(
                slot.get_or_init(|| self.timed_build(|| traceset_dfa(u, ts, sigma, pred_depth))),
            );
        }
        // First in-memory sight of this key: try the persistent store
        // before paying for a build, and write through afterwards.
        let disk_key = self.persist_key("dfa", u, ts, alpha, None, pred_depth);
        if let (Some(store), Some(dk)) = (self.store.get(), &disk_key) {
            if let Some(dfa) = store.get(dk, &sigma) {
                self.dfa_hits.fetch_add(1, Ordering::Relaxed);
                self.disk_hits.fetch_add(1, Ordering::Relaxed);
                return Arc::clone(slot.get_or_init(|| dfa));
            }
        }
        self.dfa_misses.fetch_add(1, Ordering::Relaxed);
        let mut built = false;
        let out = Arc::clone(slot.get_or_init(|| {
            built = true;
            self.timed_build(|| traceset_dfa(u, ts, sigma, pred_depth))
        }));
        if built {
            if let (Some(store), Some(dk)) = (self.store.get(), &disk_key) {
                store.put(dk, &out);
            }
        }
        out
    }

    /// The automaton view of `ts` over `alpha`, lifted to the
    /// finitization of `big` (inverse projection), interned and
    /// minimized.  Keys are structural, so a composition rebuilding the
    /// same component lift from fresh `Arc`s still hits.
    pub fn lifted_dfa(
        &self,
        u: &Arc<Universe>,
        ts: &TraceSet,
        alpha: &EventSet,
        big: &EventSet,
        pred_depth: usize,
    ) -> Arc<ConcreteDfa> {
        let key = (self.ts_key(ts), self.alpha_id(alpha), self.alpha_id(big), pred_depth);
        let (slot, inserted) = self.claim(&self.lifted, key, ts);
        if !inserted {
            self.lift_hits.fetch_add(1, Ordering::Relaxed);
            let base = self.traceset_dfa(u, ts, alpha, pred_depth);
            let sigma_big = self.alphabet(big);
            return Arc::clone(slot.get_or_init(|| self.timed_build(|| base.lift_to(sigma_big))));
        }
        let sigma_big = self.alphabet(big);
        // A disk hit serves the finished lift without even building the
        // base automaton.
        let disk_key = self.persist_key("lift", u, ts, alpha, Some(big), pred_depth);
        if let (Some(store), Some(dk)) = (self.store.get(), &disk_key) {
            if let Some(dfa) = store.get(dk, &sigma_big) {
                self.lift_hits.fetch_add(1, Ordering::Relaxed);
                self.disk_hits.fetch_add(1, Ordering::Relaxed);
                return Arc::clone(slot.get_or_init(|| dfa));
            }
        }
        self.lift_misses.fetch_add(1, Ordering::Relaxed);
        let base = self.traceset_dfa(u, ts, alpha, pred_depth);
        let mut built = false;
        let out = Arc::clone(slot.get_or_init(|| {
            built = true;
            self.timed_build(|| base.lift_to(sigma_big))
        }));
        if built {
            if let (Some(store), Some(dk)) = (self.store.get(), &disk_key) {
                store.put(dk, &out);
            }
        }
        out
    }

    /// Current counter values.
    pub fn stats(&self) -> CacheStats {
        let (disk_writes, disk_skipped) = match self.store.get() {
            Some(store) => {
                let s = store.stats();
                (s.writes, s.skipped())
            }
            None => (0, 0),
        };
        CacheStats {
            alphabet_hits: self.alphabet_hits.load(Ordering::Relaxed),
            alphabet_misses: self.alphabet_misses.load(Ordering::Relaxed),
            dfa_hits: self.dfa_hits.load(Ordering::Relaxed),
            dfa_misses: self.dfa_misses.load(Ordering::Relaxed),
            lift_hits: self.lift_hits.load(Ordering::Relaxed),
            lift_misses: self.lift_misses.load(Ordering::Relaxed),
            build_nanos: self.build_nanos.load(Ordering::Relaxed),
            min_builds: self.min_builds.load(Ordering::Relaxed),
            min_states_in: self.min_states_in.load(Ordering::Relaxed),
            min_states_out: self.min_states_out.load(Ordering::Relaxed),
            otf_checks: self.otf_checks.load(Ordering::Relaxed),
            otf_early_exits: self.otf_early_exits.load(Ordering::Relaxed),
            otf_explored: self.otf_explored.load(Ordering::Relaxed),
            disk_hits: self.disk_hits.load(Ordering::Relaxed),
            disk_writes,
            disk_skipped,
        }
    }

    /// Number of interned automata (trace-set views plus lifts).
    pub fn len(&self) -> usize {
        self.dfas.lock().unwrap_or_else(|e| e.into_inner()).len()
            + self.lifted.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// Is the cache empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop every entry (counters are kept).  Long-running services
    /// should call this at workload boundaries so pinned trace sets and
    /// universes can be reclaimed.
    pub fn clear(&self) {
        // Lock order: alphabets before the automaton maps, matching the
        // build path; stale `AlphaId`s cannot outlive this because every
        // key embedding one is dropped with the maps.
        let mut intern = self.alphabets.lock().unwrap_or_else(|e| e.into_inner());
        intern.ids.clear();
        intern.arena.clear();
        drop(intern);
        self.dfas.lock().unwrap_or_else(|e| e.into_inner()).clear();
        self.lifted.lock().unwrap_or_else(|e| e.into_inner()).clear();
        self.pinned_sets.lock().unwrap_or_else(|e| e.into_inner()).clear();
        // Fingerprints key on universe addresses, which the arena no
        // longer pins — a later universe could reuse one.
        self.universe_fps.lock().unwrap_or_else(|e| e.into_inner()).clear();
    }
}

/// Full refinement check `concrete ⊑ abstract_` (Def. 2) through the
/// cache, with the **on-the-fly** condition-3 engine: both trace-set
/// views are interned minimized automata over their *own* alphabets, and
/// the inclusion explores the product `A × ¬lift(B)` lazily, stopping at
/// the first counterexample.  Verdicts (including counterexample traces)
/// are identical to [`crate::check_refinement`]; no lifted automaton is
/// materialized on this path.
pub fn check_refinement_cached(
    cache: &DfaCache,
    concrete: &Specification,
    abstract_: &Specification,
    pred_depth: usize,
) -> Verdict {
    let conds = refinement_conditions(concrete, abstract_);
    if !conds.objects_ok {
        return Verdict::Fails { reason: FailedCondition::Objects, counterexample: None };
    }
    if !conds.alphabet_ok {
        return Verdict::Fails { reason: FailedCondition::Alphabet, counterexample: None };
    }
    let u = concrete.universe();
    let a = cache.traceset_dfa(u, concrete.trace_set(), concrete.alphabet(), pred_depth);
    let b = cache.traceset_dfa(u, abstract_.trace_set(), abstract_.alphabet(), pred_depth);
    let (verdict, otf) =
        condition3_verdict_lazy(concrete.trace_set(), abstract_.trace_set(), &a, &b, pred_depth);
    cache.record_otf(otf);
    verdict
}

/// Check many refinement queries, fanning independent verdicts across
/// threads.  Workers share `cache`, so automata common to several pairs
/// are built once; results come back in input order.
pub fn check_refinement_batch(
    cache: &DfaCache,
    pairs: &[(&Specification, &Specification)],
    pred_depth: usize,
) -> Vec<Verdict> {
    parallel_map_ref(pairs, |(concrete, abstract_)| {
        check_refinement_cached(cache, concrete, abstract_, pred_depth)
    })
}

/// Check every ordered pair of `specs` (the `specs[i] ⊑ specs[j]`
/// matrix, diagonal included) in parallel through `cache`.
///
/// Entry `[i][j]` answers "does `specs[i]` refine `specs[j]`?".  Each
/// spec's automaton and each lift target is built at most once for the
/// whole matrix.
pub fn check_all_pairs(
    cache: &DfaCache,
    specs: &[Specification],
    pred_depth: usize,
) -> Vec<Vec<Verdict>> {
    let pairs: Vec<(&Specification, &Specification)> =
        specs.iter().flat_map(|c| specs.iter().map(move |a| (c, a))).collect();
    let flat = check_refinement_batch(cache, &pairs, pred_depth);
    let n = specs.len();
    let mut flat = flat.into_iter();
    (0..n).map(|_| (0..n).map(|_| flat.next().expect("n*n verdicts")).collect()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check_refinement;
    use pospec_alphabet::{EventPattern, UniverseBuilder};
    use pospec_regex::{Re, Template, VarId};
    use pospec_trace::{MethodId, ObjectId, Trace};

    struct Fix {
        u: Arc<Universe>,
        o: ObjectId,
        objects: pospec_trace::ClassId,
        ow: MethodId,
        w: MethodId,
        cw: MethodId,
    }

    fn fix() -> Fix {
        let mut b = UniverseBuilder::new();
        let objects = b.object_class("Objects").unwrap();
        let o = b.object("o").unwrap();
        let ow = b.method("OW").unwrap();
        let w = b.method("W").unwrap();
        let cw = b.method("CW").unwrap();
        b.class_witnesses(objects, 2).unwrap();
        Fix { u: b.freeze(), o, objects, ow, w, cw }
    }

    fn alpha(f: &Fix, methods: &[MethodId]) -> EventSet {
        methods
            .iter()
            .map(|&m| EventPattern::call(f.objects, f.o, m).to_set(&f.u))
            .reduce(|a, b| a.union(&b))
            .unwrap()
    }

    fn write_spec(f: &Fix) -> Specification {
        let x = VarId(0);
        let re = Re::seq([
            Re::lit(Template::call(x, f.o, f.ow)),
            Re::lit(Template::call(x, f.o, f.w)).star(),
            Re::lit(Template::call(x, f.o, f.cw)),
        ])
        .bind(x, f.objects)
        .star();
        Specification::new("Write", [f.o], alpha(f, &[f.ow, f.w, f.cw]), TraceSet::prs(re)).unwrap()
    }

    fn universal_spec(f: &Fix) -> Specification {
        Specification::new("Any", [f.o], alpha(f, &[f.ow, f.w, f.cw]), TraceSet::Universal).unwrap()
    }

    #[test]
    fn cached_verdicts_match_uncached() {
        let f = fix();
        let w = write_spec(&f);
        let any = universal_spec(&f);
        let cache = DfaCache::new();
        for (c, a) in [(&w, &any), (&any, &w), (&w, &w), (&any, &any)] {
            let cached = check_refinement_cached(&cache, c, a, 6);
            let plain = check_refinement(c, a, 6);
            assert_eq!(cached.holds(), plain.holds(), "{} vs {}", c.name(), a.name());
            assert_eq!(
                cached.counterexample(),
                plain.counterexample(),
                "{} vs {}",
                c.name(),
                a.name()
            );
        }
    }

    #[test]
    fn repeat_queries_hit_the_cache() {
        let f = fix();
        let w = write_spec(&f);
        let any = universal_spec(&f);
        let cache = DfaCache::new();
        let before = cache.stats();
        check_refinement_cached(&cache, &w, &any, 6);
        let after_first = cache.stats();
        assert!(after_first.since(&before).misses() > 0, "first query must build");
        check_refinement_cached(&cache, &w, &any, 6);
        let after_second = cache.stats();
        let delta = after_second.since(&after_first);
        assert_eq!(delta.misses(), 0, "repeat query must be all hits: {delta:?}");
        assert!(delta.hits() > 0);
    }

    #[test]
    fn structurally_equal_specs_rebuilt_from_scratch_hit() {
        // The lift-cache miss-storm regression: every caller that rebuilds
        // an equal spec used to get fresh Arc identities and could never
        // hit.  Content keys make the rebuilt spec (and the rebuilt
        // alphabet, and the rebuilt lift) find the original entries.
        let f = fix();
        let cache = DfaCache::new();
        let first = write_spec(&f);
        let d1 = cache.traceset_dfa(&f.u, first.trace_set(), first.alphabet(), 6);
        let before = cache.stats();
        let rebuilt = write_spec(&f); // fresh Arcs, equal content
        let d2 = cache.traceset_dfa(&f.u, rebuilt.trace_set(), rebuilt.alphabet(), 6);
        let delta = cache.stats().since(&before);
        assert!(Arc::ptr_eq(&d1, &d2), "rebuilt spec must intern to the same automaton");
        assert_eq!(delta.dfa_misses, 0, "no rebuild: {delta:?}");
        assert_eq!(delta.dfa_hits, 1);

        // Same for lifts: lift the rebuilt spec to a rebuilt bigger
        // alphabet twice — second caller hits.
        let big1 = alpha(&f, &[f.ow, f.w, f.cw]);
        let small1 = alpha(&f, &[f.ow, f.cw]);
        let ow_cw = Specification::new(
            "Brackets",
            [f.o],
            small1.clone(),
            TraceSet::prs(
                Re::seq([
                    Re::lit(Template::call(VarId(0), f.o, f.ow)),
                    Re::lit(Template::call(VarId(0), f.o, f.cw)),
                ])
                .bind(VarId(0), f.objects)
                .star(),
            ),
        )
        .unwrap();
        let l1 = cache.lifted_dfa(&f.u, ow_cw.trace_set(), ow_cw.alphabet(), &big1, 6);
        let before = cache.stats();
        let rebuilt2 = Specification::new(
            "Brackets#2",
            [f.o],
            alpha(&f, &[f.cw, f.ow]), // same granules, different construction order
            TraceSet::prs(
                Re::seq([
                    Re::lit(Template::call(VarId(0), f.o, f.ow)),
                    Re::lit(Template::call(VarId(0), f.o, f.cw)),
                ])
                .bind(VarId(0), f.objects)
                .star(),
            ),
        )
        .unwrap();
        let big2 = alpha(&f, &[f.w, f.cw, f.ow]);
        let l2 = cache.lifted_dfa(&f.u, rebuilt2.trace_set(), rebuilt2.alphabet(), &big2, 6);
        let delta = cache.stats().since(&before);
        assert!(Arc::ptr_eq(&l1, &l2), "rebuilt lift must intern to the same automaton");
        assert_eq!(delta.lift_misses, 0, "rebuilt lift must hit: {delta:?}");
        assert_eq!(delta.lift_hits, 1);
    }

    #[test]
    fn distinct_depths_are_distinct_entries() {
        let f = fix();
        let w = f.w;
        let pred = Specification::new(
            "≤2 W",
            [f.o],
            alpha(&f, &[f.ow, f.w, f.cw]),
            TraceSet::predicate("≤2 W", move |h: &Trace| h.count_method(w) <= 2),
        )
        .unwrap();
        let cache = DfaCache::new();
        let d4 = cache.traceset_dfa(&f.u, pred.trace_set(), pred.alphabet(), 4);
        let d6 = cache.traceset_dfa(&f.u, pred.trace_set(), pred.alphabet(), 6);
        assert!(!Arc::ptr_eq(&d4, &d6), "depth is part of the key");
        let d4_again = cache.traceset_dfa(&f.u, pred.trace_set(), pred.alphabet(), 4);
        assert!(Arc::ptr_eq(&d4, &d4_again), "same key interns one automaton");
    }

    #[test]
    fn structurally_equal_alphabets_share_enumeration() {
        let f = fix();
        let a1 = alpha(&f, &[f.ow, f.w]);
        let a2 = alpha(&f, &[f.w, f.ow]);
        let cache = DfaCache::new();
        let s1 = cache.alphabet(&a1);
        let s2 = cache.alphabet(&a2);
        assert!(Arc::ptr_eq(&s1, &s2));
        assert_eq!(cache.stats().alphabet_misses, 1);
        assert_eq!(cache.stats().alphabet_hits, 1);
    }

    #[test]
    fn cached_automata_are_minimized() {
        let f = fix();
        let w = write_spec(&f);
        let cache = DfaCache::new();
        let cached = cache.traceset_dfa(&f.u, w.trace_set(), w.alphabet(), 6);
        let sigma = cache.alphabet(w.alphabet());
        let raw = traceset_dfa(&f.u, w.trace_set(), sigma, 6);
        assert!(cached.equiv(&raw), "minimization preserves the language");
        assert!(cached.state_count() <= raw.state_count());
        let s = cache.stats();
        assert!(s.min_builds >= 1);
        assert!(s.min_states_in >= s.min_states_out);
    }

    #[test]
    fn on_the_fly_counters_move() {
        let f = fix();
        let w = write_spec(&f);
        let any = universal_spec(&f);
        let cache = DfaCache::new();
        // Holds: exhaustive search, no early exit.
        check_refinement_cached(&cache, &w, &any, 6);
        let s1 = cache.stats();
        assert_eq!((s1.otf_checks, s1.otf_early_exits), (1, 0));
        assert!(s1.otf_explored > 0);
        // Fails: stops at the first counterexample.
        check_refinement_cached(&cache, &any, &w, 6);
        let s2 = cache.stats();
        assert_eq!((s2.otf_checks, s2.otf_early_exits), (2, 1));
    }

    #[test]
    fn batch_matches_sequential_and_matrix_shape() {
        let f = fix();
        let w = write_spec(&f);
        let any = universal_spec(&f);
        let cache = DfaCache::new();
        let specs = vec![w.clone(), any.clone()];
        let matrix = check_all_pairs(&cache, &specs, 6);
        assert_eq!(matrix.len(), 2);
        assert_eq!(matrix[0].len(), 2);
        for (i, c) in specs.iter().enumerate() {
            for (j, a) in specs.iter().enumerate() {
                let direct = check_refinement(c, a, 6);
                assert_eq!(matrix[i][j].holds(), direct.holds(), "[{i}][{j}]");
            }
        }
        // Write ⊑ Any, Any ⋢ Write, both reflexive.
        assert!(matrix[0][0].holds() && matrix[0][1].holds() && matrix[1][1].holds());
        assert!(!matrix[1][0].holds());
    }

    #[test]
    fn persisted_entries_warm_a_fresh_cache_from_disk() {
        let dir = std::env::temp_dir().join(format!("pospec-cache-persist-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let f = fix();
        let w = write_spec(&f);
        let big = alpha(&f, &[f.ow, f.w, f.cw]);
        let small = alpha(&f, &[f.ow, f.cw]);
        let brackets = Specification::new(
            "Brackets",
            [f.o],
            small,
            TraceSet::prs(
                Re::seq([
                    Re::lit(Template::call(VarId(0), f.o, f.ow)),
                    Re::lit(Template::call(VarId(0), f.o, f.cw)),
                ])
                .bind(VarId(0), f.objects)
                .star(),
            ),
        )
        .unwrap();

        // Process one: build cold, write through.
        let cold = DfaCache::new();
        cold.attach_store(Arc::new(crate::persist::PersistentStore::open(&dir).unwrap()));
        let d_cold = cold.traceset_dfa(&f.u, w.trace_set(), w.alphabet(), 6);
        let l_cold = cold.lifted_dfa(&f.u, brackets.trace_set(), brackets.alphabet(), &big, 6);
        let cold_stats = cold.stats();
        assert_eq!(cold_stats.disk_hits, 0, "first process never disk-hits");
        assert!(cold_stats.disk_writes >= 3, "base + brackets + lift written: {cold_stats:?}");

        // An opaque predicate must stay memory-only.
        let wm = f.w;
        let pred = Specification::new(
            "≤2 W",
            [f.o],
            alpha(&f, &[f.ow, f.w, f.cw]),
            TraceSet::predicate("≤2 W", move |h: &Trace| h.count_method(wm) <= 2),
        )
        .unwrap();
        cold.traceset_dfa(&f.u, pred.trace_set(), pred.alphabet(), 6);
        assert_eq!(
            cold.stats().disk_writes,
            cold_stats.disk_writes,
            "identity-keyed sets are never persisted"
        );

        // "Process two": a fresh cache over the same directory.
        let warm = DfaCache::new();
        warm.attach_store(Arc::new(crate::persist::PersistentStore::open(&dir).unwrap()));
        let d_warm = warm.traceset_dfa(&f.u, w.trace_set(), w.alphabet(), 6);
        let l_warm = warm.lifted_dfa(&f.u, brackets.trace_set(), brackets.alphabet(), &big, 6);
        let s = warm.stats();
        assert!(d_warm.equiv(&d_cold), "disk-served language identical");
        assert!(l_warm.equiv(&l_cold), "disk-served lift identical");
        assert_eq!(s.disk_hits, 2, "both probes served from disk: {s:?}");
        assert_eq!(s.dfa_misses + s.lift_misses, 0, "nothing rebuilt: {s:?}");
        assert!(s.dfa_hits + s.lift_hits > 0, "disk hits count as cache hits");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn clear_resets_entries_but_not_counters() {
        let f = fix();
        let w = write_spec(&f);
        let cache = DfaCache::new();
        cache.traceset_dfa(&f.u, w.trace_set(), w.alphabet(), 6);
        assert!(!cache.is_empty());
        let misses = cache.stats().misses();
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.stats().misses(), misses);
    }
}
