//! Memoized automaton cache and parallel batch refinement checking.
//!
//! The Def.-2 condition-3 check and the Def.-4/11 composition pipeline
//! are built from three expensive ingredients: enumerating the canonical
//! finitization of an alphabet ([`EventSet::enumerate_concrete`]),
//! building the automaton view of a trace set ([`traceset_dfa`]), and
//! lifting that view to a larger alphabet (`lift_to`).  The meta-theory
//! suite and `paper_report` issue hundreds of near-identical queries, so
//! [`DfaCache`] interns all three behind `Arc`s — extending the
//! per-instance `OnceLock` memoization of [`ComposedSet`] to a
//! query-keyed map shared by every check.
//!
//! Keys combine *identity*, not structure:
//!
//! * a trace set is keyed by the pointer identity of its backend `Arc`
//!   (compiled regex, predicate closure, conjunction list, composed set,
//!   or explicit DFA) — the cache holds a clone of each keyed set, so a
//!   key can never be revived by a reallocated `Arc`;
//! * an alphabet is keyed by its universe identity plus its exact
//!   granule set (granules are canonical, so structurally equal alphabets
//!   share one enumeration);
//! * automaton entries additionally carry the predicate-trie depth.
//!
//! Entries are `OnceLock`-guarded, so concurrent batch workers that race
//! on the same key block on one build instead of duplicating it.
//! Hit/miss/build-time counters are exported via [`CacheStats`] and
//! surface in `paper_report.json`.

use crate::parallel::parallel_map_ref;
use crate::refine::{condition3_verdict, refinement_conditions, FailedCondition, Verdict};
use crate::spec::Specification;
use crate::traceset::{traceset_dfa, TraceSet};
use pospec_alphabet::{EventGranule, EventSet, Universe};
use pospec_regex::ConcreteDfa;
use pospec_trace::Event;
use std::collections::hash_map::Entry as MapEntry;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Identity key of a trace-set backend.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum TsKey {
    Universal,
    Prs(usize),
    Predicate(usize),
    Conj(usize),
    Composed(usize),
    Dfa(usize),
}

fn ts_key(ts: &TraceSet) -> TsKey {
    match ts {
        TraceSet::Universal => TsKey::Universal,
        TraceSet::Prs(re) => TsKey::Prs(Arc::as_ptr(re) as usize),
        TraceSet::Predicate { pred, .. } => {
            TsKey::Predicate(Arc::as_ptr(pred) as *const () as usize)
        }
        TraceSet::Conj(parts) => TsKey::Conj(Arc::as_ptr(parts) as usize),
        TraceSet::Composed(c) => TsKey::Composed(Arc::as_ptr(c) as usize),
        TraceSet::Dfa(d) => TsKey::Dfa(Arc::as_ptr(d) as usize),
    }
}

/// Identity key of a finitized alphabet: universe pointer + exact
/// granule set.  Granules are canonical, so two structurally equal
/// `EventSet`s over one universe share a key (and one enumeration).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct AlphaKey {
    universe: usize,
    granules: Vec<EventGranule>,
}

fn alpha_key(set: &EventSet) -> AlphaKey {
    AlphaKey {
        universe: Arc::as_ptr(set.universe()) as usize,
        granules: set.granules().copied().collect(),
    }
}

type DfaSlot = Arc<OnceLock<Arc<ConcreteDfa>>>;

/// A snapshot of the cache's counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Alphabet-enumeration lookups served from the cache.
    pub alphabet_hits: u64,
    /// Alphabet enumerations performed.
    pub alphabet_misses: u64,
    /// Trace-set automaton lookups served from the cache.
    pub dfa_hits: u64,
    /// Trace-set automata built.
    pub dfa_misses: u64,
    /// Lifted-automaton lookups served from the cache.
    pub lift_hits: u64,
    /// Lifted automata built.
    pub lift_misses: u64,
    /// Total nanoseconds spent building cache entries (misses only).
    pub build_nanos: u64,
}

impl CacheStats {
    /// All hits across the three maps.
    pub fn hits(&self) -> u64 {
        self.alphabet_hits + self.dfa_hits + self.lift_hits
    }

    /// All misses across the three maps.
    pub fn misses(&self) -> u64 {
        self.alphabet_misses + self.dfa_misses + self.lift_misses
    }

    /// Entries built — every miss claims its slot and builds exactly
    /// once (concurrent racers block on the winner's `OnceLock`).
    pub fn builds(&self) -> u64 {
        self.misses()
    }

    /// Time spent building entries.
    pub fn build_time(&self) -> Duration {
        Duration::from_nanos(self.build_nanos)
    }

    /// Counter deltas since an earlier snapshot.
    pub fn since(&self, earlier: &CacheStats) -> CacheStats {
        CacheStats {
            alphabet_hits: self.alphabet_hits - earlier.alphabet_hits,
            alphabet_misses: self.alphabet_misses - earlier.alphabet_misses,
            dfa_hits: self.dfa_hits - earlier.dfa_hits,
            dfa_misses: self.dfa_misses - earlier.dfa_misses,
            lift_hits: self.lift_hits - earlier.lift_hits,
            lift_misses: self.lift_misses - earlier.lift_misses,
            build_nanos: self.build_nanos - earlier.build_nanos,
        }
    }
}

/// Memoized automaton cache; see the module documentation.
#[derive(Default)]
pub struct DfaCache {
    alphabets: Mutex<HashMap<AlphaKey, Arc<Vec<Event>>>>,
    dfas: Mutex<HashMap<(TsKey, AlphaKey, usize), DfaSlot>>,
    lifted: Mutex<HashMap<(TsKey, AlphaKey, AlphaKey, usize), DfaSlot>>,
    /// Clones of every keyed trace set and universe, pinning the `Arc`s
    /// whose addresses serve as keys.
    pinned_sets: Mutex<Vec<TraceSet>>,
    pinned_universes: Mutex<Vec<Arc<Universe>>>,
    alphabet_hits: AtomicU64,
    alphabet_misses: AtomicU64,
    dfa_hits: AtomicU64,
    dfa_misses: AtomicU64,
    lift_hits: AtomicU64,
    lift_misses: AtomicU64,
    build_nanos: AtomicU64,
}

impl DfaCache {
    /// A fresh, empty cache.
    pub fn new() -> Self {
        DfaCache::default()
    }

    /// The process-wide shared cache.
    pub fn global() -> &'static DfaCache {
        static GLOBAL: OnceLock<DfaCache> = OnceLock::new();
        GLOBAL.get_or_init(DfaCache::new)
    }

    /// The canonical finitization of `set`, interned.
    pub fn alphabet(&self, set: &EventSet) -> Arc<Vec<Event>> {
        let key = alpha_key(set);
        let mut map = self.alphabets.lock().unwrap_or_else(|e| e.into_inner());
        match map.entry(key) {
            MapEntry::Occupied(slot) => {
                self.alphabet_hits.fetch_add(1, Ordering::Relaxed);
                Arc::clone(slot.get())
            }
            MapEntry::Vacant(slot) => {
                self.alphabet_misses.fetch_add(1, Ordering::Relaxed);
                let start = Instant::now();
                let sigma = Arc::new(set.enumerate_concrete());
                self.build_nanos.fetch_add(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
                self.pinned_universes
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .push(Arc::clone(set.universe()));
                Arc::clone(slot.insert(sigma))
            }
        }
    }

    /// Claim the slot for `key`, recording hit/miss, without building.
    fn slot<K: std::hash::Hash + Eq>(
        &self,
        map: &Mutex<HashMap<K, DfaSlot>>,
        key: K,
        hits: &AtomicU64,
        misses: &AtomicU64,
        pin: &TraceSet,
    ) -> DfaSlot {
        let mut map = map.lock().unwrap_or_else(|e| e.into_inner());
        match map.entry(key) {
            MapEntry::Occupied(slot) => {
                hits.fetch_add(1, Ordering::Relaxed);
                Arc::clone(slot.get())
            }
            MapEntry::Vacant(slot) => {
                misses.fetch_add(1, Ordering::Relaxed);
                self.pinned_sets.lock().unwrap_or_else(|e| e.into_inner()).push(pin.clone());
                Arc::clone(slot.insert(Arc::new(OnceLock::new())))
            }
        }
    }

    fn timed_build(&self, build: impl FnOnce() -> ConcreteDfa) -> Arc<ConcreteDfa> {
        let start = Instant::now();
        let dfa = Arc::new(build());
        self.build_nanos.fetch_add(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
        dfa
    }

    /// The automaton view of `ts` over the finitization of `alpha`,
    /// interned.  Equivalent to [`traceset_dfa`] on a miss.
    pub fn traceset_dfa(
        &self,
        u: &Arc<Universe>,
        ts: &TraceSet,
        alpha: &EventSet,
        pred_depth: usize,
    ) -> Arc<ConcreteDfa> {
        let key = (ts_key(ts), alpha_key(alpha), pred_depth);
        let slot = self.slot(&self.dfas, key, &self.dfa_hits, &self.dfa_misses, ts);
        let sigma = self.alphabet(alpha);
        Arc::clone(slot.get_or_init(|| self.timed_build(|| traceset_dfa(u, ts, sigma, pred_depth))))
    }

    /// The automaton view of `ts` over `alpha`, lifted to the
    /// finitization of `big` (inverse projection), interned.
    pub fn lifted_dfa(
        &self,
        u: &Arc<Universe>,
        ts: &TraceSet,
        alpha: &EventSet,
        big: &EventSet,
        pred_depth: usize,
    ) -> Arc<ConcreteDfa> {
        let key = (ts_key(ts), alpha_key(alpha), alpha_key(big), pred_depth);
        let slot = self.slot(&self.lifted, key, &self.lift_hits, &self.lift_misses, ts);
        let base = self.traceset_dfa(u, ts, alpha, pred_depth);
        let sigma_big = self.alphabet(big);
        Arc::clone(slot.get_or_init(|| self.timed_build(|| base.lift_to(sigma_big))))
    }

    /// Current counter values.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            alphabet_hits: self.alphabet_hits.load(Ordering::Relaxed),
            alphabet_misses: self.alphabet_misses.load(Ordering::Relaxed),
            dfa_hits: self.dfa_hits.load(Ordering::Relaxed),
            dfa_misses: self.dfa_misses.load(Ordering::Relaxed),
            lift_hits: self.lift_hits.load(Ordering::Relaxed),
            lift_misses: self.lift_misses.load(Ordering::Relaxed),
            build_nanos: self.build_nanos.load(Ordering::Relaxed),
        }
    }

    /// Number of interned automata (trace-set views plus lifts).
    pub fn len(&self) -> usize {
        self.dfas.lock().unwrap_or_else(|e| e.into_inner()).len()
            + self.lifted.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// Is the cache empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop every entry (counters are kept).  Long-running services
    /// should call this at workload boundaries so pinned trace sets and
    /// universes can be reclaimed.
    pub fn clear(&self) {
        self.alphabets.lock().unwrap_or_else(|e| e.into_inner()).clear();
        self.dfas.lock().unwrap_or_else(|e| e.into_inner()).clear();
        self.lifted.lock().unwrap_or_else(|e| e.into_inner()).clear();
        self.pinned_sets.lock().unwrap_or_else(|e| e.into_inner()).clear();
        self.pinned_universes.lock().unwrap_or_else(|e| e.into_inner()).clear();
    }
}

/// Full refinement check `concrete ⊑ abstract_` (Def. 2) through the
/// cache.  Verdicts (including counterexample traces) are identical to
/// [`crate::check_refinement`]; only the automaton construction is
/// shared and memoized.
pub fn check_refinement_cached(
    cache: &DfaCache,
    concrete: &Specification,
    abstract_: &Specification,
    pred_depth: usize,
) -> Verdict {
    let conds = refinement_conditions(concrete, abstract_);
    if !conds.objects_ok {
        return Verdict::Fails { reason: FailedCondition::Objects, counterexample: None };
    }
    if !conds.alphabet_ok {
        return Verdict::Fails { reason: FailedCondition::Alphabet, counterexample: None };
    }
    let u = concrete.universe();
    let sigma_conc = cache.alphabet(concrete.alphabet());
    let sigma_abs = cache.alphabet(abstract_.alphabet());
    let a = cache.traceset_dfa(u, concrete.trace_set(), concrete.alphabet(), pred_depth);
    let b = cache.lifted_dfa(
        u,
        abstract_.trace_set(),
        abstract_.alphabet(),
        concrete.alphabet(),
        pred_depth,
    );
    condition3_verdict(
        concrete.trace_set(),
        abstract_.trace_set(),
        &a,
        &b,
        &sigma_conc,
        &sigma_abs,
        pred_depth,
    )
}

/// Check many refinement queries, fanning independent verdicts across
/// threads.  Workers share `cache`, so automata common to several pairs
/// are built once; results come back in input order.
pub fn check_refinement_batch(
    cache: &DfaCache,
    pairs: &[(&Specification, &Specification)],
    pred_depth: usize,
) -> Vec<Verdict> {
    parallel_map_ref(pairs, |(concrete, abstract_)| {
        check_refinement_cached(cache, concrete, abstract_, pred_depth)
    })
}

/// Check every ordered pair of `specs` (the `specs[i] ⊑ specs[j]`
/// matrix, diagonal included) in parallel through `cache`.
///
/// Entry `[i][j]` answers "does `specs[i]` refine `specs[j]`?".  Each
/// spec's automaton and each lift target is built at most once for the
/// whole matrix.
pub fn check_all_pairs(
    cache: &DfaCache,
    specs: &[Specification],
    pred_depth: usize,
) -> Vec<Vec<Verdict>> {
    let pairs: Vec<(&Specification, &Specification)> =
        specs.iter().flat_map(|c| specs.iter().map(move |a| (c, a))).collect();
    let flat = check_refinement_batch(cache, &pairs, pred_depth);
    let n = specs.len();
    let mut flat = flat.into_iter();
    (0..n).map(|_| (0..n).map(|_| flat.next().expect("n*n verdicts")).collect()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check_refinement;
    use pospec_alphabet::{EventPattern, UniverseBuilder};
    use pospec_regex::{Re, Template, VarId};
    use pospec_trace::{MethodId, ObjectId, Trace};

    struct Fix {
        u: Arc<Universe>,
        o: ObjectId,
        objects: pospec_trace::ClassId,
        ow: MethodId,
        w: MethodId,
        cw: MethodId,
    }

    fn fix() -> Fix {
        let mut b = UniverseBuilder::new();
        let objects = b.object_class("Objects").unwrap();
        let o = b.object("o").unwrap();
        let ow = b.method("OW").unwrap();
        let w = b.method("W").unwrap();
        let cw = b.method("CW").unwrap();
        b.class_witnesses(objects, 2).unwrap();
        Fix { u: b.freeze(), o, objects, ow, w, cw }
    }

    fn alpha(f: &Fix, methods: &[MethodId]) -> EventSet {
        methods
            .iter()
            .map(|&m| EventPattern::call(f.objects, f.o, m).to_set(&f.u))
            .reduce(|a, b| a.union(&b))
            .unwrap()
    }

    fn write_spec(f: &Fix) -> Specification {
        let x = VarId(0);
        let re = Re::seq([
            Re::lit(Template::call(x, f.o, f.ow)),
            Re::lit(Template::call(x, f.o, f.w)).star(),
            Re::lit(Template::call(x, f.o, f.cw)),
        ])
        .bind(x, f.objects)
        .star();
        Specification::new("Write", [f.o], alpha(f, &[f.ow, f.w, f.cw]), TraceSet::prs(re)).unwrap()
    }

    fn universal_spec(f: &Fix) -> Specification {
        Specification::new("Any", [f.o], alpha(f, &[f.ow, f.w, f.cw]), TraceSet::Universal).unwrap()
    }

    #[test]
    fn cached_verdicts_match_uncached() {
        let f = fix();
        let w = write_spec(&f);
        let any = universal_spec(&f);
        let cache = DfaCache::new();
        for (c, a) in [(&w, &any), (&any, &w), (&w, &w), (&any, &any)] {
            let cached = check_refinement_cached(&cache, c, a, 6);
            let plain = check_refinement(c, a, 6);
            assert_eq!(cached.holds(), plain.holds(), "{} vs {}", c.name(), a.name());
            assert_eq!(
                cached.counterexample(),
                plain.counterexample(),
                "{} vs {}",
                c.name(),
                a.name()
            );
        }
    }

    #[test]
    fn repeat_queries_hit_the_cache() {
        let f = fix();
        let w = write_spec(&f);
        let any = universal_spec(&f);
        let cache = DfaCache::new();
        let before = cache.stats();
        check_refinement_cached(&cache, &w, &any, 6);
        let after_first = cache.stats();
        assert!(after_first.since(&before).misses() > 0, "first query must build");
        check_refinement_cached(&cache, &w, &any, 6);
        let after_second = cache.stats();
        let delta = after_second.since(&after_first);
        assert_eq!(delta.misses(), 0, "repeat query must be all hits: {delta:?}");
        assert!(delta.hits() > 0);
    }

    #[test]
    fn distinct_depths_are_distinct_entries() {
        let f = fix();
        let w = f.w;
        let pred = Specification::new(
            "≤2 W",
            [f.o],
            alpha(&f, &[f.ow, f.w, f.cw]),
            TraceSet::predicate("≤2 W", move |h: &Trace| h.count_method(w) <= 2),
        )
        .unwrap();
        let cache = DfaCache::new();
        let d4 = cache.traceset_dfa(&f.u, pred.trace_set(), pred.alphabet(), 4);
        let d6 = cache.traceset_dfa(&f.u, pred.trace_set(), pred.alphabet(), 6);
        assert!(!Arc::ptr_eq(&d4, &d6), "depth is part of the key");
        let d4_again = cache.traceset_dfa(&f.u, pred.trace_set(), pred.alphabet(), 4);
        assert!(Arc::ptr_eq(&d4, &d4_again), "same key interns one automaton");
    }

    #[test]
    fn structurally_equal_alphabets_share_enumeration() {
        let f = fix();
        let a1 = alpha(&f, &[f.ow, f.w]);
        let a2 = alpha(&f, &[f.w, f.ow]);
        let cache = DfaCache::new();
        let s1 = cache.alphabet(&a1);
        let s2 = cache.alphabet(&a2);
        assert!(Arc::ptr_eq(&s1, &s2));
        assert_eq!(cache.stats().alphabet_misses, 1);
        assert_eq!(cache.stats().alphabet_hits, 1);
    }

    #[test]
    fn batch_matches_sequential_and_matrix_shape() {
        let f = fix();
        let w = write_spec(&f);
        let any = universal_spec(&f);
        let cache = DfaCache::new();
        let specs = vec![w.clone(), any.clone()];
        let matrix = check_all_pairs(&cache, &specs, 6);
        assert_eq!(matrix.len(), 2);
        assert_eq!(matrix[0].len(), 2);
        for (i, c) in specs.iter().enumerate() {
            for (j, a) in specs.iter().enumerate() {
                let direct = check_refinement(c, a, 6);
                assert_eq!(matrix[i][j].holds(), direct.holds(), "[{i}][{j}]");
            }
        }
        // Write ⊑ Any, Any ⋢ Write, both reflexive.
        assert!(matrix[0][0].holds() && matrix[0][1].holds() && matrix[1][1].holds());
        assert!(!matrix[1][0].holds());
    }

    #[test]
    fn clear_resets_entries_but_not_counters() {
        let f = fix();
        let w = write_spec(&f);
        let cache = DfaCache::new();
        cache.traceset_dfa(&f.u, w.trace_set(), w.alphabet(), 6);
        assert!(!cache.is_empty());
        let misses = cache.stats().misses();
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.stats().misses(), misses);
    }
}
