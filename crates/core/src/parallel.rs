//! Deterministic-order data parallelism over OS threads.
//!
//! A tiny scoped-thread work engine used everywhere the workspace fans
//! independent work items out: frontier expansion in bounded
//! exploration, theorem fuzzing, and the batch refinement-checking API
//! of [`crate::cache`].  Results always come back in input order, and a
//! single-item (or single-CPU) workload runs inline on the caller's
//! thread, so parallel and sequential execution are observationally
//! identical apart from wall-clock time.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Number of worker threads to use for `n` independent items.
pub fn worker_count(n: usize) -> usize {
    let cpus = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1);
    cpus.min(n).max(1)
}

/// Map `f` over `items` on a scoped thread pool, preserving input order.
///
/// Falls back to a plain sequential map when the workload or the machine
/// has no parallelism to offer.
pub fn parallel_map_ref<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    let n = items.len();
    let workers = worker_count(n);
    if workers <= 1 {
        return items.iter().map(f).collect();
    }
    let next = AtomicUsize::new(0);
    let mut parts: Vec<Vec<(usize, U)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        local.push((i, f(&items[i])));
                    }
                    local
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("worker panicked")).collect()
    });
    let mut out: Vec<Option<U>> = (0..n).map(|_| None).collect();
    for (i, u) in parts.drain(..).flatten() {
        out[i] = Some(u);
    }
    out.into_iter().map(|slot| slot.expect("every index mapped")).collect()
}

/// Map `f` over owned items, preserving input order.
pub fn parallel_map<T, U, F>(items: Vec<T>, f: F) -> Vec<U>
where
    T: Send + Sync,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    let mut slots: Vec<Option<T>> = items.into_iter().map(Some).collect();
    // Hand each worker exclusive ownership of its item through the index
    // protocol: each index is claimed exactly once.
    let cells: Vec<std::sync::Mutex<Option<T>>> =
        slots.drain(..).map(std::sync::Mutex::new).collect();
    parallel_map_ref(&cells, |cell| {
        let item = cell.lock().unwrap_or_else(|e| e.into_inner()).take().expect("claimed once");
        f(item)
    })
}

/// Parallel `flat_map` preserving the order of `items` (each item's
/// output block appears in input position).
pub fn parallel_flat_map_ref<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> Vec<U> + Sync,
{
    parallel_map_ref(items, f).into_iter().flatten().collect()
}

/// First item (in input order) satisfying `pred`, searched in parallel.
///
/// Matches rayon's `find_first`: the result is the *earliest* match,
/// not merely the first one discovered, so callers relying on
/// shortest-first/BFS witness order keep that guarantee.
pub fn parallel_find_first<T, F>(items: Vec<T>, pred: F) -> Option<T>
where
    T: Send + Sync,
    F: Fn(&T) -> bool + Sync,
{
    let n = items.len();
    let workers = worker_count(n);
    if workers <= 1 {
        return items.into_iter().find(|t| pred(t));
    }
    let next = AtomicUsize::new(0);
    let best = AtomicUsize::new(usize::MAX);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                // Indices past the best known match can never win.
                if i >= n || i >= best.load(Ordering::Acquire) {
                    break;
                }
                if pred(&items[i]) {
                    best.fetch_min(i, Ordering::AcqRel);
                }
            });
        }
    });
    let found = best.load(Ordering::Acquire);
    if found == usize::MAX {
        None
    } else {
        items.into_iter().nth(found)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_order() {
        let input: Vec<usize> = (0..1000).collect();
        let doubled = parallel_map_ref(&input, |x| x * 2);
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
        let owned = parallel_map(input, |x| x + 1);
        assert_eq!(owned, (1..1001).collect::<Vec<_>>());
    }

    #[test]
    fn flat_map_keeps_block_order() {
        let input = vec![3usize, 0, 2];
        let out = parallel_flat_map_ref(&input, |&k| (0..k).map(|i| (k, i)).collect());
        assert_eq!(out, vec![(3, 0), (3, 1), (3, 2), (2, 0), (2, 1)]);
    }

    #[test]
    fn find_first_returns_earliest_match() {
        let items: Vec<usize> = (0..10_000).collect();
        assert_eq!(parallel_find_first(items.clone(), |&x| x % 977 == 3), Some(3));
        assert_eq!(parallel_find_first(items, |&x| x > 10_000), None);
    }

    #[test]
    fn empty_and_singleton_inputs() {
        assert_eq!(parallel_map_ref::<u8, u8, _>(&[], |x| *x), Vec::<u8>::new());
        assert_eq!(parallel_map_ref(&[7], |x| x + 1), vec![8]);
        assert_eq!(parallel_find_first(Vec::<u8>::new(), |_| true), None);
    }
}
