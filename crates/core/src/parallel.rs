//! Deterministic-order data parallelism over OS threads.
//!
//! A tiny scoped-thread work engine used everywhere the workspace fans
//! independent work items out: frontier expansion in bounded
//! exploration, theorem fuzzing, and the batch refinement-checking API
//! of [`crate::cache`].  Results always come back in input order, and a
//! single-item (or single-CPU) workload runs inline on the caller's
//! thread, so parallel and sequential execution are observationally
//! identical apart from wall-clock time.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Number of worker threads to use for `n` independent items.
pub fn worker_count(n: usize) -> usize {
    let cpus = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1);
    cpus.min(n).max(1)
}

/// One work item panicked inside a parallel map.
///
/// The panic is caught *per item*: the worker that hit it keeps claiming
/// and processing further items, so a single bad item never costs the
/// results of its siblings.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerPanic {
    /// Input index of the offending item.
    pub index: usize,
    /// Best-effort rendering of the panic payload.
    pub message: String,
}

impl std::fmt::Display for WorkerPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "work item {} panicked: {}", self.index, self.message)
    }
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Map `f` over `items` on a scoped thread pool, preserving input order
/// and isolating per-item panics.
///
/// Every item is attempted; an item whose `f` panics yields
/// `Err(WorkerPanic)` in its slot while all other slots carry their
/// results.  Falls back to a plain sequential map when the workload or
/// the machine has no parallelism to offer.
pub fn parallel_try_map_ref<T, U, F>(items: &[T], f: F) -> Vec<Result<U, WorkerPanic>>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    let n = items.len();
    let workers = worker_count(n);
    let run_one = |i: usize| -> Result<U, WorkerPanic> {
        catch_unwind(AssertUnwindSafe(|| f(&items[i])))
            .map_err(|p| WorkerPanic { index: i, message: panic_message(p) })
    };
    if workers <= 1 {
        return (0..n).map(run_one).collect();
    }
    let next = AtomicUsize::new(0);
    let mut parts: Vec<Vec<(usize, Result<U, WorkerPanic>)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        local.push((i, run_one(i)));
                    }
                    local
                })
            })
            .collect();
        // Item panics are caught inside run_one, so a join failure can
        // only mean a panic in the claiming loop itself.
        handles.into_iter().map(|h| h.join().expect("worker survives item panics")).collect()
    });
    let mut out: Vec<Option<Result<U, WorkerPanic>>> = (0..n).map(|_| None).collect();
    for (i, u) in parts.drain(..).flatten() {
        out[i] = Some(u);
    }
    out.into_iter().map(|slot| slot.expect("every index mapped")).collect()
}

/// Map `f` over `items` on a scoped thread pool, preserving input order.
///
/// Panics (after all items have been attempted) if any item's `f`
/// panicked, naming the earliest offending index.  Use
/// [`parallel_try_map_ref`] to observe per-item panics instead.
pub fn parallel_map_ref<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    let mut out = Vec::with_capacity(items.len());
    for r in parallel_try_map_ref(items, f) {
        match r {
            Ok(u) => out.push(u),
            Err(p) => panic!("{}", p),
        }
    }
    out
}

/// Map `f` over owned items, preserving input order.
pub fn parallel_map<T, U, F>(items: Vec<T>, f: F) -> Vec<U>
where
    T: Send + Sync,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    let mut slots: Vec<Option<T>> = items.into_iter().map(Some).collect();
    // Hand each worker exclusive ownership of its item through the index
    // protocol: each index is claimed exactly once.
    let cells: Vec<std::sync::Mutex<Option<T>>> =
        slots.drain(..).map(std::sync::Mutex::new).collect();
    parallel_map_ref(&cells, |cell| {
        let item = cell.lock().unwrap_or_else(|e| e.into_inner()).take().expect("claimed once");
        f(item)
    })
}

/// Parallel `flat_map` preserving the order of `items` (each item's
/// output block appears in input position).
pub fn parallel_flat_map_ref<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> Vec<U> + Sync,
{
    parallel_map_ref(items, f).into_iter().flatten().collect()
}

/// First item (in input order) satisfying `pred`, searched in parallel.
///
/// Matches rayon's `find_first`: the result is the *earliest* match,
/// not merely the first one discovered, so callers relying on
/// shortest-first/BFS witness order keep that guarantee.
pub fn parallel_find_first<T, F>(items: Vec<T>, pred: F) -> Option<T>
where
    T: Send + Sync,
    F: Fn(&T) -> bool + Sync,
{
    let n = items.len();
    let workers = worker_count(n);
    if workers <= 1 {
        return items.into_iter().find(|t| pred(t));
    }
    let next = AtomicUsize::new(0);
    let best = AtomicUsize::new(usize::MAX);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                // Indices past the best known match can never win.
                if i >= n || i >= best.load(Ordering::Acquire) {
                    break;
                }
                if pred(&items[i]) {
                    best.fetch_min(i, Ordering::AcqRel);
                }
            });
        }
    });
    let found = best.load(Ordering::Acquire);
    if found == usize::MAX {
        None
    } else {
        items.into_iter().nth(found)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_order() {
        let input: Vec<usize> = (0..1000).collect();
        let doubled = parallel_map_ref(&input, |x| x * 2);
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
        let owned = parallel_map(input, |x| x + 1);
        assert_eq!(owned, (1..1001).collect::<Vec<_>>());
    }

    #[test]
    fn flat_map_keeps_block_order() {
        let input = vec![3usize, 0, 2];
        let out = parallel_flat_map_ref(&input, |&k| (0..k).map(|i| (k, i)).collect());
        assert_eq!(out, vec![(3, 0), (3, 1), (3, 2), (2, 0), (2, 1)]);
    }

    #[test]
    fn find_first_returns_earliest_match() {
        let items: Vec<usize> = (0..10_000).collect();
        assert_eq!(parallel_find_first(items.clone(), |&x| x % 977 == 3), Some(3));
        assert_eq!(parallel_find_first(items, |&x| x > 10_000), None);
    }

    #[test]
    fn a_panicking_item_does_not_lose_other_results() {
        let input: Vec<usize> = (0..64).collect();
        let results = parallel_try_map_ref(&input, |&x| {
            if x == 13 {
                panic!("unlucky {x}");
            }
            x * 2
        });
        assert_eq!(results.len(), 64);
        for (i, r) in results.iter().enumerate() {
            if i == 13 {
                let p = r.as_ref().expect_err("item 13 must fail");
                assert_eq!(p.index, 13);
                assert!(p.message.contains("unlucky 13"), "got: {}", p.message);
            } else {
                assert_eq!(r.as_ref().expect("sibling items survive"), &(i * 2));
            }
        }
    }

    #[test]
    fn map_ref_panics_with_the_earliest_offending_index() {
        let input = vec![0usize, 1, 2, 3];
        let caught = std::panic::catch_unwind(|| {
            parallel_map_ref(&input, |&x| if x >= 2 { panic!("bad {x}") } else { x })
        });
        let payload = caught.expect_err("must propagate the panic");
        let msg = super::panic_message(payload);
        assert!(msg.contains("work item 2 panicked"), "got: {msg}");
        assert!(msg.contains("bad 2"), "got: {msg}");
    }

    #[test]
    fn empty_and_singleton_inputs() {
        assert_eq!(parallel_map_ref::<u8, u8, _>(&[], |x| *x), Vec::<u8>::new());
        assert_eq!(parallel_map_ref(&[7], |x| x + 1), vec![8]);
        assert_eq!(parallel_find_first(Vec::<u8>::new(), |_| true), None);
    }
}
