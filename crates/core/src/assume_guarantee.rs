//! Assumption/guarantee trace sets — the OUN specification style.
//!
//! §9 describes OUN as *"relying on input/output driven assumption
//! guarantee specifications of generic behavioral interfaces"*.  For an
//! object set `O`, every event of a Def.-1 alphabet is either an **input**
//! (callee in `O`: the environment calls the object) or an **output**
//! (caller in `O`: the object calls out).  An assumption/guarantee pair
//! `(A, G)` then denotes the trace set
//!
//! ```text
//! T = { h | ∀ prefixes p of h :  A(p/inputs) ⇒ G(p) }
//! ```
//!
//! — the object must keep the guarantee at every point where the
//! environment (its input projection) has kept the assumption; the
//! environment's violation of `A` releases all obligations from that
//! point on (for the usual monotone assumptions).  The set is the largest
//! prefix-closed subset, enforced by the predicate backend.

use crate::spec::Specification;
use crate::traceset::TraceSet;
use pospec_trace::{ObjectId, Trace};
use std::collections::BTreeSet;
use std::sync::Arc;

/// Split of a specification's events into inputs and outputs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Callee in `O`: the environment calls the object(s).
    Input,
    /// Caller in `O`: the object(s) call the environment.
    Output,
}

/// Classify an event relative to an object set.
///
/// Def.-1 alphabets guarantee exactly one endpoint lies in `O`, so the
/// classification is total on admissible events.
pub fn direction_of(objects: &BTreeSet<ObjectId>, e: &pospec_trace::Event) -> Direction {
    if objects.contains(&e.callee) {
        Direction::Input
    } else {
        Direction::Output
    }
}

/// Build the assumption/guarantee trace set for the object set `objects`.
///
/// * `assumption` is evaluated on the projection of a prefix to its
///   *input* events;
/// * `guarantee` is evaluated on whole prefixes.
///
/// Membership of `h`: for every prefix `p` of `h`, if the inputs of `p`
/// *excluding a trailing output's view* satisfy the assumption, the
/// guarantee must hold at `p`.  Violating the assumption releases the
/// guarantee from that point on.
pub fn assume_guarantee(
    name: impl Into<Arc<str>>,
    objects: impl IntoIterator<Item = ObjectId>,
    assumption: impl Fn(&Trace) -> bool + Send + Sync + 'static,
    guarantee: impl Fn(&Trace) -> bool + Send + Sync + 'static,
) -> TraceSet {
    let objects: BTreeSet<ObjectId> = objects.into_iter().collect();
    let name = name.into();
    TraceSet::predicate(format!("AG({name})"), move |h: &Trace| {
        // Largest-prefix-closed-subset semantics re-checks prefixes, so
        // evaluating the condition at `h` itself is enough here.
        let inputs = Trace::from_events(
            h.iter().filter(|e| direction_of(&objects, e) == Direction::Input).copied().collect(),
        );
        // The input projection already excludes the object's own moves,
        // so a trailing output never changes what was assumed.
        if !assumption(&inputs) {
            return true; // environment broke A: all obligations released
        }
        guarantee(h)
    })
}

/// Convenience: an AG specification.
pub fn ag_specification(
    name: &str,
    objects: impl IntoIterator<Item = ObjectId> + Clone,
    alphabet: pospec_alphabet::EventSet,
    assumption: impl Fn(&Trace) -> bool + Send + Sync + 'static,
    guarantee: impl Fn(&Trace) -> bool + Send + Sync + 'static,
) -> Result<Specification, crate::spec::SpecError> {
    let ts = assume_guarantee(name, objects.clone(), assumption, guarantee);
    Specification::new(name, objects, alphabet, ts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pospec_alphabet::{EventPattern, ObjSpec, UniverseBuilder};
    use pospec_trace::{Event, MethodId};

    struct Fix {
        u: Arc<pospec_alphabet::Universe>,
        server: ObjectId,
        c: ObjectId,
        req: MethodId,
        rsp: MethodId,
    }

    fn fix() -> Fix {
        let mut b = UniverseBuilder::new();
        let env = b.object_class("Env").unwrap();
        let server = b.object("server").unwrap();
        let c = b.object_in("c", env).unwrap();
        let req = b.method("req").unwrap();
        let rsp = b.method("rsp").unwrap();
        b.class_witnesses(env, 1).unwrap();
        Fix { u: b.freeze(), server, c, req, rsp }
    }

    /// "Assuming at most one outstanding request, I guarantee never to
    /// send more responses than requests."
    fn server_spec(f: &Fix) -> Specification {
        let alpha = EventPattern::call(ObjSpec::Any, f.server, f.req)
            .to_set(&f.u)
            .union(&EventPattern::call(f.server, ObjSpec::Any, f.rsp).to_set(&f.u));
        let (req, rsp) = (f.req, f.rsp);
        let req2 = req;
        ag_specification(
            "Server",
            [f.server],
            alpha,
            move |inputs: &Trace| inputs.count_method(req2) <= 3,
            move |h: &Trace| h.count_method(rsp) <= h.count_method(req),
        )
        .unwrap()
    }

    #[test]
    fn direction_classification() {
        let f = fix();
        let objects: BTreeSet<_> = [f.server].into_iter().collect();
        assert_eq!(direction_of(&objects, &Event::call(f.c, f.server, f.req)), Direction::Input);
        assert_eq!(direction_of(&objects, &Event::call(f.server, f.c, f.rsp)), Direction::Output);
    }

    #[test]
    fn guarantee_enforced_while_assumption_holds() {
        let f = fix();
        let s = server_spec(&f);
        let good = Trace::from_events(vec![
            Event::call(f.c, f.server, f.req),
            Event::call(f.server, f.c, f.rsp),
        ]);
        assert!(s.contains_trace(&good));
        // Response without request violates the guarantee (assumption
        // holds: zero requests ≤ 3).
        let bad = Trace::from_events(vec![Event::call(f.server, f.c, f.rsp)]);
        assert!(!s.contains_trace(&bad));
    }

    #[test]
    fn broken_assumption_releases_the_guarantee() {
        let f = fix();
        let s = server_spec(&f);
        // Four requests break the assumption; afterwards even gratuitous
        // responses are permitted (the object is no longer on the hook).
        let mut evs = vec![Event::call(f.c, f.server, f.req); 4];
        evs.push(Event::call(f.server, f.c, f.rsp));
        evs.push(Event::call(f.server, f.c, f.rsp));
        evs.push(Event::call(f.server, f.c, f.rsp));
        evs.push(Event::call(f.server, f.c, f.rsp));
        evs.push(Event::call(f.server, f.c, f.rsp));
        let t = Trace::from_events(evs);
        assert!(s.contains_trace(&t), "obligations released after A broke");
    }

    #[test]
    fn prefix_closure_still_applies() {
        let f = fix();
        let s = server_spec(&f);
        // A trace whose *prefix* violated the guarantee under a holding
        // assumption stays out, even if a later assumption break would
        // have released it.
        let evs = vec![
            Event::call(f.server, f.c, f.rsp), // violation here
            Event::call(f.c, f.server, f.req),
            Event::call(f.c, f.server, f.req),
            Event::call(f.c, f.server, f.req),
            Event::call(f.c, f.server, f.req), // assumption breaks here
        ];
        let t = Trace::from_events(evs);
        assert!(!s.contains_trace(&t));
    }

    #[test]
    fn ag_specs_participate_in_refinement() {
        let f = fix();
        let s = server_spec(&f);
        // A deterministic responder (exactly one rsp per req, alternating)
        // refines the AG spec.
        let x = pospec_regex::VarId(0);
        let det = Specification::new(
            "Responder",
            [f.server],
            s.alphabet().clone(),
            TraceSet::prs(
                pospec_regex::Re::seq([
                    pospec_regex::Re::lit(pospec_regex::Template::call(x, f.server, f.req)),
                    pospec_regex::Re::lit(pospec_regex::Template {
                        caller: f.server.into(),
                        callee: pospec_regex::TObj::Var(x),
                        method: Some(f.rsp),
                        arg: Default::default(),
                    }),
                ])
                .bind(x, f.u.class_by_name("Env").unwrap())
                .star(),
            ),
        )
        .unwrap();
        let v = crate::refine::check_refinement(&det, &s, 5);
        assert!(v.holds(), "{v}");
    }
}
