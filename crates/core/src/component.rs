//! Semantic components (Def. 8–9) and specification soundness (§2, §7).
//!
//! A component encapsulates a set of objects whose *semantic* trace sets
//! `T^o ⊆ Seq[α_o]` are given.  Its observable alphabet is
//! `α_C = ⋃_{o∈C} α_o − I(C)` and its trace set is the hiding of the
//! joint behaviour:
//!
//! ```text
//! T_C = { h/α_C  |  ⋀_{o∈C} h/α_o ∈ T^o }.
//! ```
//!
//! Component composition is plain set union (object uniqueness makes it
//! commutative, associative and compositional — §6).
//!
//! A specification `Γ` is **sound** for a component `C` when every joint
//! behaviour projects into `T(Γ)`: `∀h: (⋀ h/α_o ∈ T^o) ⇒ h/α(Γ) ∈ T(Γ)`,
//! generalising the single-object notion of §2.  Lemma 13 (composition
//! preserves soundness) is checked against this definition in
//! `pospec-check`.

use crate::spec::Specification;
use crate::traceset::{traceset_dfa, TraceSet};
use pospec_alphabet::{alpha_object, internal_of_set, EventSet, Universe};
use pospec_regex::ConcreteDfa;
use pospec_trace::{Event, ObjectId, Trace};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

/// An object with semantically-given behaviour `T^o` over its full
/// alphabet `α_o`.
#[derive(Debug, Clone)]
pub struct SemanticObject {
    /// The object's identity.
    pub id: ObjectId,
    /// `T^o` — all possible executions of the object, as a prefix-closed
    /// trace set over `α_o`.
    pub traces: TraceSet,
}

impl SemanticObject {
    /// A new semantic object.
    pub fn new(id: ObjectId, traces: TraceSet) -> Self {
        SemanticObject { id, traces }
    }

    /// An object with unconstrained behaviour.
    pub fn chaotic(id: ObjectId) -> Self {
        SemanticObject { id, traces: TraceSet::Universal }
    }
}

/// A component: a finite set of semantic objects (Def. 8–9).
#[derive(Debug, Clone, Default)]
pub struct Component {
    objects: BTreeMap<ObjectId, SemanticObject>,
}

impl Component {
    /// Build from semantic objects.  Object identities must be unique; a
    /// duplicate keeps the first occurrence (object semantics are unique
    /// by assumption — §6).
    pub fn new(objects: impl IntoIterator<Item = SemanticObject>) -> Self {
        let mut map = BTreeMap::new();
        for o in objects {
            map.entry(o.id).or_insert(o);
        }
        Component { objects: map }
    }

    /// The encapsulated object identities.
    pub fn object_ids(&self) -> BTreeSet<ObjectId> {
        self.objects.keys().copied().collect()
    }

    /// The semantic objects.
    pub fn members(&self) -> impl Iterator<Item = &SemanticObject> + '_ {
        self.objects.values()
    }

    /// Number of objects.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// Is the component empty?
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// Component composition = union on object sets (§6).  Commutative and
    /// associative by construction.
    pub fn compose(&self, other: &Component) -> Component {
        let mut map = self.objects.clone();
        for (id, o) in &other.objects {
            map.entry(*id).or_insert_with(|| o.clone());
        }
        Component { objects: map }
    }

    /// `I(C)` — the internal events of the component (Def. 8).
    pub fn internal(&self, u: &Arc<Universe>) -> EventSet {
        internal_of_set(u, &self.object_ids())
    }

    /// `α_C = ⋃ α_o − I(C)` — the observable alphabet (Def. 9).
    pub fn alphabet(&self, u: &Arc<Universe>) -> EventSet {
        let mut acc = EventSet::empty(u);
        for id in self.objects.keys() {
            acc = acc.union(&alpha_object(u, *id));
        }
        acc.difference(&self.internal(u))
    }

    /// The joint alphabet `⋃ α_o` *without* hiding.
    pub fn joint_alphabet(&self, u: &Arc<Universe>) -> EventSet {
        let mut acc = EventSet::empty(u);
        for id in self.objects.keys() {
            acc = acc.union(&alpha_object(u, *id));
        }
        acc
    }

    /// Does a joint trace satisfy every object's behaviour
    /// (`⋀ h/α_o ∈ T^o`)?
    pub fn joint_contains(&self, u: &Arc<Universe>, h: &Trace) -> bool {
        self.objects.values().all(|o| {
            let ho = h.project_object(o.id);
            o.traces.contains(u, &ho)
        })
    }

    /// The automaton of the joint behaviour over an explicit alphabet:
    /// the intersection of each object's lifted automaton.
    pub fn joint_dfa(
        &self,
        u: &Arc<Universe>,
        sigma: Arc<Vec<Event>>,
        pred_depth: usize,
    ) -> ConcreteDfa {
        let mut acc = ConcreteDfa::universal(Arc::clone(&sigma));
        for o in self.objects.values() {
            let sigma_o: Arc<Vec<Event>> =
                Arc::new(sigma.iter().filter(|e| e.involves(o.id)).copied().collect());
            let dfa = traceset_dfa(u, &o.traces, sigma_o, pred_depth).lift_to(Arc::clone(&sigma));
            acc = acc.intersect(&dfa);
        }
        acc
    }

    /// The automaton of `T_C` (Def. 9) over the finitized joint alphabet:
    /// joint behaviour with internal events erased.
    pub fn observable_dfa(&self, u: &Arc<Universe>, pred_depth: usize) -> ConcreteDfa {
        let sigma = Arc::new(self.joint_alphabet(u).enumerate_concrete());
        let internal = self.internal(u);
        self.joint_dfa(u, sigma, pred_depth).erase(move |e| internal.contains(e))
    }

    /// Soundness of a specification for this component: every joint
    /// behaviour must project into `T(Γ)`.  Returns a joint counterexample
    /// trace on failure.  Exact over the finitization for regular trace
    /// sets, exact up to `pred_depth` otherwise.
    pub fn check_soundness(&self, spec: &Specification, pred_depth: usize) -> Result<(), Trace> {
        let u = spec.universe();
        let sigma = Arc::new(self.joint_alphabet(u).enumerate_concrete());
        let joint = self.joint_dfa(u, Arc::clone(&sigma), pred_depth);
        let sigma_spec = Arc::new(spec.alphabet().enumerate_concrete());
        let spec_dfa =
            traceset_dfa(u, spec.trace_set(), sigma_spec, pred_depth).lift_to(Arc::clone(&sigma));
        match joint.included_in(&spec_dfa) {
            Ok(()) => Ok(()),
            Err(w) => Err(Trace::from_events(w)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pospec_alphabet::{EventPattern, UniverseBuilder};
    use pospec_regex::{Re, Template};
    use pospec_trace::{ClassId, MethodId};

    struct Fix {
        u: Arc<Universe>,
        o: ObjectId,
        c: ObjectId,
        objects: ClassId,
        ping: MethodId,
        pong: MethodId,
    }

    fn fix() -> Fix {
        let mut b = UniverseBuilder::new();
        let objects = b.object_class("Objects").unwrap();
        let o = b.object("o").unwrap();
        let c = b.object("c").unwrap();
        let ping = b.method("ping").unwrap();
        let pong = b.method("pong").unwrap();
        b.class_witnesses(objects, 1).unwrap();
        b.method_witnesses(1).unwrap();
        Fix { u: b.freeze(), o, c, objects, ping, pong }
    }

    /// `o` answers every `ping` from anywhere with a `pong` to `c`.
    fn responder(f: &Fix) -> SemanticObject {
        let re = Re::seq([
            Re::lit(Template {
                caller: pospec_regex::TObj::Any,
                callee: f.o.into(),
                method: Some(f.ping),
                arg: Default::default(),
            }),
            Re::lit(Template::call(f.o, f.c, f.pong)),
        ])
        .star();
        SemanticObject::new(f.o, TraceSet::prs(re))
    }

    #[test]
    fn composition_is_union_commutative_associative() {
        let f = fix();
        let a = Component::new([SemanticObject::chaotic(f.o)]);
        let b = Component::new([SemanticObject::chaotic(f.c)]);
        let ab = a.compose(&b);
        let ba = b.compose(&a);
        assert_eq!(ab.object_ids(), ba.object_ids());
        assert_eq!(ab.len(), 2);
        let abab = ab.compose(&ab);
        assert_eq!(abab.object_ids(), ab.object_ids(), "idempotent on same objects");
    }

    #[test]
    fn component_alphabet_hides_internal_events() {
        let f = fix();
        let comp = Component::new([SemanticObject::chaotic(f.o), SemanticObject::chaotic(f.c)]);
        let alpha = comp.alphabet(&f.u);
        assert!(!alpha.contains(&Event::call(f.o, f.c, f.pong)), "o↔c is internal");
        let wit = f.u.class_witnesses(f.objects).next().unwrap();
        assert!(alpha.contains(&Event::call(wit, f.o, f.ping)), "environment events visible");
        assert!(comp.internal(&f.u).contains(&Event::call(f.o, f.c, f.pong)));
    }

    #[test]
    fn joint_contains_projects_per_object() {
        let f = fix();
        let comp = Component::new([responder(&f), SemanticObject::chaotic(f.c)]);
        let wit = f.u.class_witnesses(f.objects).next().unwrap();
        let good =
            Trace::from_events(vec![Event::call(wit, f.o, f.ping), Event::call(f.o, f.c, f.pong)]);
        assert!(comp.joint_contains(&f.u, &good));
        let bad = Trace::from_events(vec![Event::call(f.o, f.c, f.pong)]);
        assert!(!comp.joint_contains(&f.u, &bad), "pong before ping violates T^o");
    }

    #[test]
    fn soundness_of_a_partial_spec() {
        let f = fix();
        let comp = Component::new([responder(&f)]);
        // Spec considering only ping events: universal over them — sound.
        let alpha_ping =
            EventPattern::call(pospec_alphabet::ObjSpec::Any, f.o, f.ping).to_set(&f.u);
        let spec =
            Specification::new("Pings", [f.o], alpha_ping.clone(), TraceSet::Universal).unwrap();
        assert!(comp.check_soundness(&spec, 6).is_ok());

        // Spec claiming at most one ping ever: unsound; witness has 2 pings.
        let ping = f.ping;
        let spec2 = Specification::new(
            "OnePing",
            [f.o],
            alpha_ping,
            TraceSet::predicate("≤1 ping", move |h: &Trace| h.count_method(ping) <= 1),
        )
        .unwrap();
        let cex = comp.check_soundness(&spec2, 6).unwrap_err();
        assert!(cex.count_method(f.ping) >= 2);
        assert!(comp.joint_contains(&f.u, &cex), "counterexample is a real behaviour");
    }

    #[test]
    fn observable_dfa_erases_internal_chatter() {
        let f = fix();
        let comp = Component::new([responder(&f), SemanticObject::chaotic(f.c)]);
        let dfa = comp.observable_dfa(&f.u, 4);
        // After hiding, a lone external ping is an observable trace.
        let wit = f.u.class_witnesses(f.objects).next().unwrap();
        let ping_only = Trace::from_events(vec![Event::call(wit, f.o, f.ping)]);
        assert!(dfa.contains_trace(&ping_only));
        // The pong to c is hidden, so it cannot appear.
        assert!(dfa.alphabet().iter().all(|e| !(e.caller == f.o && e.callee == f.c)));
    }

    #[test]
    fn empty_component_has_empty_alphabet() {
        let f = fix();
        let comp = Component::new([]);
        assert!(comp.is_empty());
        assert!(comp.alphabet(&f.u).is_empty());
        assert!(comp.joint_contains(&f.u, &Trace::empty()));
    }
}
