//! The asynchrony model of the paper's Example-1 footnote:
//!
//! > *"A call to R(d) can be modeled by two events where only the last
//! > event contains the value which is read.  This lets us capture
//! > asynchrony."*
//!
//! [`split_method`] rewrites a specification that uses a synchronous
//! value-returning method `m(d)` into one over a *request/reply pair*:
//! the caller's parameterless request `m_req` followed by the callee's
//! value-carrying reply `m_rsp(d)` in the opposite direction.  The
//! rewriting acts on the alphabet (exact, granule-level) and on `prs`
//! trace sets (each literal `⟨x, o, m(d)⟩` becomes
//! `⟨x, o, m_req⟩ ⟨o, x, m_rsp(d)⟩`).
//!
//! The inverse direction is an abstraction function: renaming `m_rsp`
//! back to `m` (with swapped endpoints) and erasing `m_req` recovers a
//! spec whose traces project onto the synchronous original — tested in
//! `async_roundtrip_via_morphism`.

use crate::spec::{SpecError, Specification};
use crate::traceset::TraceSet;
use pospec_alphabet::{ArgGranule, EventGranule, EventSet, MethodGranule, Universe};
use pospec_regex::{Re, TArg, Template};
use pospec_trace::MethodId;
use std::fmt;
use std::sync::Arc;

/// Why a specification could not be split.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AsyncSplitError {
    /// The trace-set backend is not a rewritable `prs`/`Universal` form.
    UnsupportedBackend(String),
    /// The produced specification failed Def.-1 validation.
    Spec(SpecError),
}

impl fmt::Display for AsyncSplitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsyncSplitError::UnsupportedBackend(b) => {
                write!(f, "cannot rewrite trace-set backend {b}")
            }
            AsyncSplitError::Spec(e) => write!(f, "split specification ill-formed: {e}"),
        }
    }
}

impl std::error::Error for AsyncSplitError {}

/// Split the granules of `m` in an alphabet into request + reply
/// granules.
fn split_alphabet(
    u: &Arc<Universe>,
    alpha: &EventSet,
    m: MethodId,
    req: MethodId,
    rsp: MethodId,
) -> EventSet {
    let granules: Vec<EventGranule> = alpha
        .granules()
        .flat_map(|g| match g.method {
            MethodGranule::Named(mm) if mm == m => vec![
                // Request: caller → callee, no argument.
                EventGranule::new(g.caller, g.callee, MethodGranule::Named(req), ArgGranule::None),
                // Reply: callee → caller, carrying the original argument.
                EventGranule::new(g.callee, g.caller, MethodGranule::Named(rsp), g.arg),
            ],
            _ => vec![*g],
        })
        .collect();
    EventSet::from_granules(u, granules)
}

/// Rewrite a `prs` expression, replacing every literal of `m` by the
/// request/reply sequence.
fn split_re(re: &Re, m: MethodId, req: MethodId, rsp: MethodId) -> Re {
    match re {
        Re::Empty => Re::Empty,
        Re::Eps => Re::Eps,
        Re::Lit(t) if t.method == Some(m) => {
            let request =
                Template { caller: t.caller, callee: t.callee, method: Some(req), arg: TArg::Auto };
            let reply =
                Template { caller: t.callee, callee: t.caller, method: Some(rsp), arg: t.arg };
            Re::seq([Re::lit(request), Re::lit(reply)])
        }
        Re::Lit(t) => Re::Lit(*t),
        Re::Seq(a, b) => {
            Re::Seq(Box::new(split_re(a, m, req, rsp)), Box::new(split_re(b, m, req, rsp)))
        }
        Re::Alt(a, b) => {
            Re::Alt(Box::new(split_re(a, m, req, rsp)), Box::new(split_re(b, m, req, rsp)))
        }
        Re::Star(a) => Re::Star(Box::new(split_re(a, m, req, rsp))),
        Re::Bind { var, class, body } => {
            Re::Bind { var: *var, class: *class, body: Box::new(split_re(body, m, req, rsp)) }
        }
    }
}

/// Split the synchronous value-returning method `m` of `spec` into the
/// request/reply pair `(req, rsp)` (both must be declared in the
/// universe: `req` parameterless, `rsp` with `m`'s data class, since the
/// reply carries the value).
pub fn split_method(
    spec: &Specification,
    m: MethodId,
    req: MethodId,
    rsp: MethodId,
) -> Result<Specification, AsyncSplitError> {
    let u = spec.universe();
    let alpha = split_alphabet(u, spec.alphabet(), m, req, rsp);
    let ts = match spec.trace_set() {
        TraceSet::Universal => TraceSet::Universal,
        TraceSet::Prs(re) => TraceSet::prs(split_re(re.re(), m, req, rsp)),
        other => {
            return Err(AsyncSplitError::UnsupportedBackend(format!("{other:?}")));
        }
    };
    Specification::new(
        format!("{}⟨async {}⟩", spec.name(), u.method_name(m)),
        spec.objects().iter().copied(),
        alpha,
        ts,
    )
    .map_err(AsyncSplitError::Spec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::morphism::{check_refinement_upto, Morphism};
    use pospec_alphabet::{EventPattern, UniverseBuilder};
    use pospec_regex::VarId;
    use pospec_trace::{Event, ObjectId, Trace};

    struct Fix {
        u: Arc<Universe>,
        o: ObjectId,
        c: ObjectId,
        objects: pospec_trace::ClassId,
        r: MethodId,
        r_req: MethodId,
        r_rsp: MethodId,
        d: pospec_trace::DataId,
    }

    fn fix() -> Fix {
        let mut b = UniverseBuilder::new();
        let objects = b.object_class("Objects").unwrap();
        let data = b.data_class("Data").unwrap();
        let o = b.object("o").unwrap();
        let c = b.object_in("c", objects).unwrap();
        let r = b.method_with("R", data).unwrap();
        let r_req = b.method("R_req").unwrap();
        let r_rsp = b.method_with("R_rsp", data).unwrap();
        b.class_witnesses(objects, 2).unwrap();
        let d = b.data_witnesses(data, 1).unwrap()[0];
        Fix { u: b.freeze(), o, c, objects, r, r_req, r_rsp, d }
    }

    /// A bracketless "read then read then …" protocol, per caller.
    fn sync_spec(f: &Fix) -> Specification {
        let x = VarId(0);
        Specification::new(
            "SyncRead",
            [f.o],
            EventPattern::call(f.objects, f.o, f.r).to_set(&f.u),
            TraceSet::prs(Re::lit(Template::call(x, f.o, f.r)).bind(x, f.objects).star()),
        )
        .unwrap()
    }

    #[test]
    fn split_alphabet_has_both_directions() {
        let f = fix();
        let split = split_method(&sync_spec(&f), f.r, f.r_req, f.r_rsp).unwrap();
        assert!(split.alphabet().contains(&Event::call(f.c, f.o, f.r_req)));
        assert!(split.alphabet().contains(&Event::call_with(f.o, f.c, f.r_rsp, f.d)));
        assert!(!split.alphabet().contains(&Event::call_with(f.c, f.o, f.r, f.d)));
        // Still a Def.-1 valid spec of {o}: replies originate at o.
        assert!(split.is_interface());
        assert!(split.alphabet().is_infinite());
    }

    #[test]
    fn split_traces_interleave_request_then_reply() {
        let f = fix();
        let split = split_method(&sync_spec(&f), f.r, f.r_req, f.r_rsp).unwrap();
        let good = Trace::from_events(vec![
            Event::call(f.c, f.o, f.r_req),
            Event::call_with(f.o, f.c, f.r_rsp, f.d),
            Event::call(f.c, f.o, f.r_req),
            Event::call_with(f.o, f.c, f.r_rsp, f.d),
        ]);
        assert!(split.contains_trace(&good));
        // A reply without a request is not a trace.
        let bad = Trace::from_events(vec![Event::call_with(f.o, f.c, f.r_rsp, f.d)]);
        assert!(!split.contains_trace(&bad));
        // A pending request is a legal prefix (that is the asynchrony).
        let pending = Trace::from_events(vec![Event::call(f.c, f.o, f.r_req)]);
        assert!(split.contains_trace(&pending));
    }

    #[test]
    fn async_roundtrip_via_morphism() {
        // Erasing requests and renaming replies back to R — with the
        // endpoints swapped by the reply direction — yields traces whose
        // R-projection matches the synchronous spec *with o as caller*;
        // build the synchronous comparison spec in that direction.
        let f = fix();
        let split = split_method(&sync_spec(&f), f.r, f.r_req, f.r_rsp).unwrap();
        let phi = Morphism::identity().erase_method(f.r_req).rename_method(f.r_rsp, f.r);
        let sync_reversed = Specification::new(
            "SyncRev",
            [f.o],
            EventPattern::call(f.o, f.objects, f.r).to_set(&f.u),
            TraceSet::Universal,
        )
        .unwrap();
        let v = check_refinement_upto(&split, &sync_reversed, &phi, 5);
        assert!(v.holds(), "{v}");
    }

    #[test]
    fn unsupported_backends_are_reported() {
        let f = fix();
        let pred_spec = Specification::new(
            "Opaque",
            [f.o],
            EventPattern::call(f.objects, f.o, f.r).to_set(&f.u),
            TraceSet::predicate("p", |_| true),
        )
        .unwrap();
        let err = split_method(&pred_spec, f.r, f.r_req, f.r_rsp).unwrap_err();
        assert!(matches!(err, AsyncSplitError::UnsupportedBackend(_)));
    }

    #[test]
    fn splitting_an_absent_method_is_identity_on_the_alphabet() {
        let f = fix();
        let mut b2 = UniverseBuilder::new();
        let _ = &mut b2;
        let spec = sync_spec(&f);
        // Split a method the alphabet does not mention: nothing changes
        // except the name.
        let split = split_method(&spec, f.r_rsp, f.r_req, f.r_rsp).unwrap();
        assert!(split.alphabet().set_eq(spec.alphabet()));
    }
}
