//! Deterministic automata over a finitized concrete alphabet.
//!
//! Exact refinement and composition checking needs decision procedures on
//! trace sets: inclusion (Def. 2 condition 3), product (the conjunction in
//! Def. 4/11), and **hiding** (erasing internal events, the `− I(…)`
//! part of composition).  Over the infinite symbolic alphabet these are
//! undecidable in general, but over a *finitization* — a finite concrete
//! alphabet obtained by sampling witnesses from every infinite granule —
//! they reduce to standard automaton constructions, implemented here:
//!
//! * [`ConcreteDfa::from_nfa`] — subset construction over the binding NFA's
//!   simulation states;
//! * [`ConcreteDfa::intersect`] / [`ConcreteDfa::union`] — product automata;
//! * [`ConcreteDfa::complement`] — totalization + flip;
//! * [`ConcreteDfa::included_in`] — emptiness of `L(A) ∩ ¬L(B)` with a
//!   shortest counterexample word;
//! * [`ConcreteDfa::erase`] — hide a subset of the alphabet by treating its
//!   symbols as ε and re-determinizing (the observable behaviour of a
//!   composition);
//! * [`ConcreteDfa::lift_to`] — inverse projection onto a larger alphabet
//!   (unconstrained symbols self-loop), which is how a component
//!   specification constrains only *its own* projection of a joint trace.

use crate::nfa::{Nfa, SimSet};
use pospec_alphabet::Universe;
use pospec_trace::{Event, Trace};
use std::collections::{BTreeSet, HashMap, VecDeque};
use std::sync::Arc;

/// How subset-construction states are marked accepting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AcceptMode {
    /// Accept when an accepting NFA state is present: the automaton
    /// recognizes the exact language `L(R)`.
    Exact,
    /// Accept when a *live* NFA state is present: the automaton recognizes
    /// the prefix closure `{h | h prs R}` — the trace-set semantics.
    PrefixLive,
}

/// A deterministic automaton over an explicit finite alphabet of events.
///
/// A missing transition (`None`) is an implicit dead state: the word and
/// all its extensions are rejected.
#[derive(Debug, Clone)]
pub struct ConcreteDfa {
    pub(crate) alphabet: Arc<Vec<Event>>,
    pub(crate) index: HashMap<Event, usize>,
    /// `trans[state][symbol]`.
    pub(crate) trans: Vec<Vec<Option<u32>>>,
    pub(crate) accepting: Vec<bool>,
    pub(crate) start: usize,
}

fn index_of(alphabet: &[Event]) -> HashMap<Event, usize> {
    alphabet.iter().enumerate().map(|(i, e)| (*e, i)).collect()
}

impl ConcreteDfa {
    /// Determinize a binding NFA over the given concrete alphabet.
    pub fn from_nfa(u: &Universe, nfa: &Nfa, alphabet: Arc<Vec<Event>>, mode: AcceptMode) -> Self {
        let accepting_of = |set: &SimSet| match mode {
            AcceptMode::Exact => nfa.any_accepting(set),
            AcceptMode::PrefixLive => nfa.any_live(set),
        };
        let start_set = nfa.initial();
        let mut states: Vec<SimSet> = vec![start_set.clone()];
        let mut ids: HashMap<SimSet, u32> = HashMap::new();
        ids.insert(start_set, 0);
        let mut trans: Vec<Vec<Option<u32>>> = Vec::new();
        let mut accepting = Vec::new();
        let mut i = 0usize;
        while i < states.len() {
            let set = states[i].clone();
            accepting.push(accepting_of(&set));
            let mut row = Vec::with_capacity(alphabet.len());
            for e in alphabet.iter() {
                let next = nfa.step(u, &set, e);
                if next.is_empty() {
                    row.push(None);
                } else {
                    let id = *ids.entry(next.clone()).or_insert_with(|| {
                        states.push(next);
                        (states.len() - 1) as u32
                    });
                    row.push(Some(id));
                }
            }
            trans.push(row);
            i += 1;
        }
        let index = index_of(&alphabet);
        ConcreteDfa { alphabet, index, trans, accepting, start: 0 }
    }

    /// The automaton accepting **every** word over the alphabet
    /// (unrestricted trace sets like `T(Read)` of Example 1).
    pub fn universal(alphabet: Arc<Vec<Event>>) -> Self {
        let index = index_of(&alphabet);
        let trans = vec![vec![Some(0); alphabet.len()]];
        ConcreteDfa { alphabet, index, trans, accepting: vec![true], start: 0 }
    }

    /// The automaton accepting nothing.
    pub fn empty_lang(alphabet: Arc<Vec<Event>>) -> Self {
        let index = index_of(&alphabet);
        let trans = vec![vec![None; alphabet.len()]];
        ConcreteDfa { alphabet, index, trans, accepting: vec![false], start: 0 }
    }

    /// The automaton accepting every word of length at most `k` — used to
    /// truncate languages to a comparison depth.
    pub fn length_at_most(alphabet: Arc<Vec<Event>>, k: usize) -> Self {
        let index = index_of(&alphabet);
        let n = alphabet.len();
        let mut trans = Vec::with_capacity(k + 1);
        for i in 0..=k {
            if i < k {
                trans.push(vec![Some((i + 1) as u32); n]);
            } else {
                trans.push(vec![None; n]);
            }
        }
        ConcreteDfa { alphabet, index, trans, accepting: vec![true; k + 1], start: 0 }
    }

    /// The one-state automaton accepting exactly the words whose symbols
    /// all satisfy `allowed` — the `Seq[α]` side condition of a trace set
    /// viewed over a larger alphabet.
    pub fn symbol_filter(alphabet: Arc<Vec<Event>>, allowed: impl Fn(&Event) -> bool) -> Self {
        let index = index_of(&alphabet);
        let trans =
            vec![alphabet.iter().map(|e| if allowed(e) { Some(0) } else { None }).collect()];
        ConcreteDfa { alphabet, index, trans, accepting: vec![true], start: 0 }
    }

    /// The automaton accepting only the empty word.
    pub fn eps_lang(alphabet: Arc<Vec<Event>>) -> Self {
        let index = index_of(&alphabet);
        let trans = vec![vec![None; alphabet.len()]];
        ConcreteDfa { alphabet, index, trans, accepting: vec![true], start: 0 }
    }

    /// Build from an explicit membership predicate by unfolding the prefix
    /// tree up to `depth` and merging nothing (a trie acceptor).  Exact for
    /// words up to `depth`; all longer words are rejected.  Used to wrap
    /// opaque predicate trace sets when a bounded automaton view is needed.
    pub fn from_membership(
        alphabet: Arc<Vec<Event>>,
        depth: usize,
        mut member: impl FnMut(&Trace) -> bool,
    ) -> Self {
        let index = index_of(&alphabet);
        let mut trans: Vec<Vec<Option<u32>>> = Vec::new();
        let mut accepting = Vec::new();
        // State 0 is the root (empty trace); build a trie of member traces.
        #[allow(clippy::type_complexity)]
        fn build(
            alphabet: &[Event],
            trace: &mut Vec<Event>,
            depth: usize,
            member: &mut impl FnMut(&Trace) -> bool,
            trans: &mut Vec<Vec<Option<u32>>>,
            accepting: &mut Vec<bool>,
        ) -> u32 {
            let id = trans.len() as u32;
            trans.push(vec![None; alphabet.len()]);
            accepting.push(true); // the caller only recurses into members
            if depth == 0 {
                return id;
            }
            for (i, e) in alphabet.iter().enumerate() {
                trace.push(*e);
                if member(&Trace::from_events(trace.clone())) {
                    let child = build(alphabet, trace, depth - 1, member, trans, accepting);
                    trans[id as usize][i] = Some(child);
                }
                trace.pop();
            }
            id
        }
        let mut scratch = Vec::new();
        if member(&Trace::empty()) {
            build(&alphabet, &mut scratch, depth, &mut member, &mut trans, &mut accepting);
        } else {
            trans.push(vec![None; alphabet.len()]);
            accepting.push(false);
        }
        ConcreteDfa { alphabet, index, trans, accepting, start: 0 }
    }

    /// The alphabet.
    pub fn alphabet(&self) -> &Arc<Vec<Event>> {
        &self.alphabet
    }

    /// Number of explicit states.
    pub fn state_count(&self) -> usize {
        self.trans.len()
    }

    /// The transition table, `rows()[state][symbol]` (`None` = dead).
    ///
    /// Exposed for serialisation (the persistent automaton cache);
    /// semantic queries should go through [`ConcreteDfa::successor`].
    pub fn rows(&self) -> &[Vec<Option<u32>>] {
        &self.trans
    }

    /// The accepting mask, indexed by state.
    pub fn accepting_mask(&self) -> &[bool] {
        &self.accepting
    }

    /// Reassemble an automaton from its serialised parts, validating
    /// every structural invariant (row widths, target and start bounds)
    /// so a corrupt or truncated cache file can never yield an automaton
    /// that indexes out of bounds.
    pub fn from_parts(
        alphabet: Arc<Vec<Event>>,
        trans: Vec<Vec<Option<u32>>>,
        accepting: Vec<bool>,
        start: usize,
    ) -> Result<ConcreteDfa, String> {
        let states = trans.len();
        if states == 0 {
            return Err("automaton must have at least one state".into());
        }
        if accepting.len() != states {
            return Err(format!(
                "accepting mask covers {} state(s), transition table has {states}",
                accepting.len()
            ));
        }
        if start >= states {
            return Err(format!("start state {start} out of range (0..{states})"));
        }
        for (s, row) in trans.iter().enumerate() {
            if row.len() != alphabet.len() {
                return Err(format!(
                    "state {s} has {} transition(s), alphabet has {} symbol(s)",
                    row.len(),
                    alphabet.len()
                ));
            }
            if let Some(t) = row.iter().flatten().find(|t| **t as usize >= states) {
                return Err(format!("state {s} targets out-of-range state {t}"));
            }
        }
        let index = index_of(&alphabet);
        if index.len() != alphabet.len() {
            return Err("alphabet contains duplicate events".into());
        }
        Ok(ConcreteDfa { alphabet, index, trans, accepting, start })
    }

    fn assert_same_alphabet(&self, other: &ConcreteDfa) {
        // Interned alphabets (the automaton cache hands out one `Arc` per
        // structural alphabet) make this an O(1) pointer check; the content
        // comparison only runs for automata built outside the cache.
        if Arc::ptr_eq(&self.alphabet, &other.alphabet) {
            return;
        }
        assert_eq!(
            &*self.alphabet, &*other.alphabet,
            "automata over different alphabets cannot be combined"
        );
    }

    /// The position of `e` in the alphabet, if present.
    pub fn symbol_index(&self, e: &Event) -> Option<usize> {
        self.index.get(e).copied()
    }

    /// Run the automaton; `None` means the word fell off the graph.
    fn run<'a>(&self, events: impl IntoIterator<Item = &'a Event>) -> Option<usize> {
        let mut s = self.start;
        for e in events {
            let i = *self.index.get(e)?;
            match self.trans[s][i] {
                Some(t) => s = t as usize,
                None => return None,
            }
        }
        Some(s)
    }

    /// Does the automaton accept the word?
    pub fn accepts<'a>(&self, events: impl IntoIterator<Item = &'a Event>) -> bool {
        self.run(events).map(|s| self.accepting[s]).unwrap_or(false)
    }

    /// The state reached by a word (`None` if the run dies), for callers
    /// that need to deduplicate histories by automaton state.
    pub fn state_after<'a>(&self, events: impl IntoIterator<Item = &'a Event>) -> Option<usize> {
        self.run(events)
    }

    /// Is the state accepting?
    pub fn is_accepting(&self, state: usize) -> bool {
        self.accepting[state]
    }

    /// The start state.
    pub fn start_state(&self) -> usize {
        self.start
    }

    /// The successor of `state` on the `sym`-th alphabet symbol.
    pub fn successor(&self, state: usize, sym: usize) -> Option<usize> {
        self.trans[state][sym].map(|t| t as usize)
    }

    /// Membership of a [`Trace`].
    pub fn contains_trace(&self, h: &Trace) -> bool {
        self.accepts(h.iter())
    }

    /// Is the accepted language empty?
    pub fn is_empty_lang(&self) -> bool {
        self.find_accepted_word().is_none()
    }

    /// Does the automaton accept only the empty word (or nothing)?
    ///
    /// The *deadlock* criterion of Examples 4/5: a composition whose trace
    /// set is `{ε}` can never perform an observable event.
    pub fn accepts_only_epsilon(&self) -> bool {
        // Accepting states must be unreachable after ≥1 symbol.
        let mut seen = vec![false; self.trans.len()];
        let mut q = VecDeque::new();
        // Seed with the successors of the start state (≥1 symbol consumed).
        for t in self.trans[self.start].iter().flatten() {
            if !seen[*t as usize] {
                seen[*t as usize] = true;
                q.push_back(*t as usize);
            }
        }
        while let Some(s) = q.pop_front() {
            if self.accepting[s] {
                return false;
            }
            for t in self.trans[s].iter().flatten() {
                if !seen[*t as usize] {
                    seen[*t as usize] = true;
                    q.push_back(*t as usize);
                }
            }
        }
        true
    }

    /// A shortest accepted word, if any.
    pub fn find_accepted_word(&self) -> Option<Vec<Event>> {
        let mut seen = vec![false; self.trans.len()];
        let mut parent: Vec<Option<(usize, usize)>> = vec![None; self.trans.len()];
        let mut q = VecDeque::new();
        seen[self.start] = true;
        q.push_back(self.start);
        while let Some(s) = q.pop_front() {
            if self.accepting[s] {
                // Reconstruct.
                let mut word = Vec::new();
                let mut cur = s;
                while let Some((p, sym)) = parent[cur] {
                    word.push(self.alphabet[sym]);
                    cur = p;
                }
                word.reverse();
                return Some(word);
            }
            for (sym, t) in self.trans[s].iter().enumerate() {
                if let Some(t) = t {
                    let t = *t as usize;
                    if !seen[t] {
                        seen[t] = true;
                        parent[t] = Some((s, sym));
                        q.push_back(t);
                    }
                }
            }
        }
        None
    }

    /// Product automaton accepting `L(self) ∩ L(other)`.
    pub fn intersect(&self, other: &ConcreteDfa) -> ConcreteDfa {
        self.product(other, |a, b| a && b)
    }

    /// Product automaton accepting `L(self) ∪ L(other)`.
    ///
    /// Union requires totalized operands, handled internally.
    pub fn union(&self, other: &ConcreteDfa) -> ConcreteDfa {
        self.totalize().product(&other.totalize(), |a, b| a || b)
    }

    fn product(&self, other: &ConcreteDfa, acc: impl Fn(bool, bool) -> bool) -> ConcreteDfa {
        self.assert_same_alphabet(other);
        let k = self.alphabet.len();
        let mut ids: HashMap<(u32, u32), u32> = HashMap::new();
        let mut pairs: Vec<(u32, u32)> = vec![(self.start as u32, other.start as u32)];
        ids.insert(pairs[0], 0);
        let mut trans: Vec<Vec<Option<u32>>> = Vec::new();
        let mut accepting = Vec::new();
        let mut i = 0;
        while i < pairs.len() {
            let (a, b) = pairs[i];
            accepting.push(acc(self.accepting[a as usize], other.accepting[b as usize]));
            let mut row = Vec::with_capacity(k);
            for sym in 0..k {
                let na = self.trans[a as usize][sym];
                let nb = other.trans[b as usize][sym];
                row.push(match (na, nb) {
                    (Some(x), Some(y)) => {
                        let id = *ids.entry((x, y)).or_insert_with(|| {
                            pairs.push((x, y));
                            (pairs.len() - 1) as u32
                        });
                        Some(id)
                    }
                    _ => None,
                });
            }
            trans.push(row);
            i += 1;
        }
        ConcreteDfa {
            alphabet: Arc::clone(&self.alphabet),
            index: self.index.clone(),
            trans,
            accepting,
            start: 0,
        }
    }

    /// Make every transition defined by adding an explicit dead state.
    pub fn totalize(&self) -> ConcreteDfa {
        if self.trans.iter().all(|row| row.iter().all(|t| t.is_some())) {
            return self.clone();
        }
        let dead = self.trans.len() as u32;
        let k = self.alphabet.len();
        let mut trans: Vec<Vec<Option<u32>>> = self
            .trans
            .iter()
            .map(|row| row.iter().map(|t| Some(t.unwrap_or(dead))).collect())
            .collect();
        trans.push(vec![Some(dead); k]);
        let mut accepting = self.accepting.clone();
        accepting.push(false);
        ConcreteDfa {
            alphabet: Arc::clone(&self.alphabet),
            index: self.index.clone(),
            trans,
            accepting,
            start: self.start,
        }
    }

    /// The complement automaton over the same alphabet.
    pub fn complement(&self) -> ConcreteDfa {
        let mut t = self.totalize();
        for a in &mut t.accepting {
            *a = !*a;
        }
        t
    }

    /// Check `L(self) ⊆ L(other)`, returning a shortest word of
    /// `L(self) ∖ L(other)` on failure.
    pub fn included_in(&self, other: &ConcreteDfa) -> Result<(), Vec<Event>> {
        self.assert_same_alphabet(other);
        let witness = self.intersect(&other.complement()).find_accepted_word();
        match witness {
            None => Ok(()),
            Some(w) => Err(w),
        }
    }

    /// Language equality.
    pub fn equiv(&self, other: &ConcreteDfa) -> bool {
        self.included_in(other).is_ok() && other.included_in(self).is_ok()
    }

    /// Hide part of the alphabet: symbols satisfying `hidden` become ε and
    /// the result is re-determinized over the remaining symbols.
    ///
    /// This is the observable-behaviour construction of composition: the
    /// language of `Γ‖∆` over `α` is the erasure of the joint language
    /// over `α(Γ) ∪ α(∆)` by `I(O)`.
    pub fn erase(&self, hidden: impl Fn(&Event) -> bool) -> ConcreteDfa {
        let visible: Vec<Event> = self.alphabet.iter().filter(|e| !hidden(e)).copied().collect();
        let hidden_syms: Vec<usize> =
            self.alphabet.iter().enumerate().filter(|(_, e)| hidden(e)).map(|(i, _)| i).collect();
        let visible_syms: Vec<usize> =
            self.alphabet.iter().enumerate().filter(|(_, e)| !hidden(e)).map(|(i, _)| i).collect();

        // ε-closure over hidden transitions.
        let closure = |set: &BTreeSet<u32>| -> BTreeSet<u32> {
            let mut out = set.clone();
            let mut stack: Vec<u32> = out.iter().copied().collect();
            while let Some(s) = stack.pop() {
                for &h in &hidden_syms {
                    if let Some(t) = self.trans[s as usize][h] {
                        if out.insert(t) {
                            stack.push(t);
                        }
                    }
                }
            }
            out
        };

        let start_set = closure(&BTreeSet::from([self.start as u32]));
        let mut ids: HashMap<BTreeSet<u32>, u32> = HashMap::new();
        let mut sets = vec![start_set.clone()];
        ids.insert(start_set, 0);
        let mut trans: Vec<Vec<Option<u32>>> = Vec::new();
        let mut accepting = Vec::new();
        let mut i = 0;
        while i < sets.len() {
            let set = sets[i].clone();
            accepting.push(set.iter().any(|&s| self.accepting[s as usize]));
            let mut row = Vec::with_capacity(visible_syms.len());
            for &sym in &visible_syms {
                let mut next = BTreeSet::new();
                for &s in &set {
                    if let Some(t) = self.trans[s as usize][sym] {
                        next.insert(t);
                    }
                }
                if next.is_empty() {
                    row.push(None);
                } else {
                    let next = closure(&next);
                    let id = *ids.entry(next.clone()).or_insert_with(|| {
                        sets.push(next);
                        (sets.len() - 1) as u32
                    });
                    row.push(Some(id));
                }
            }
            trans.push(row);
            i += 1;
        }
        let alphabet = Arc::new(visible);
        let index = index_of(&alphabet);
        ConcreteDfa { alphabet, index, trans, accepting, start: 0 }
    }

    /// Apply an alphabetic homomorphism: each symbol is renamed via `map`
    /// (or erased when `map` returns `None`), and the image language is
    /// re-determinized over `target` — the automaton of
    /// `{ φ(w) | w ∈ L(self) }`.
    ///
    /// Mapped symbols that do not occur in `target` are dropped from the
    /// image (their words contribute nothing).  This is the engine behind
    /// refinement up to abstraction functions (paper §3's deferred
    /// "refinement of method parameters").
    pub fn map_symbols(
        &self,
        target: Arc<Vec<Event>>,
        map: impl Fn(&Event) -> Option<Event>,
    ) -> ConcreteDfa {
        let target_index = index_of(&target);
        // For each original symbol: None = erased (ε), Some(j) = target j.
        let mapped: Vec<Option<usize>> = self
            .alphabet
            .iter()
            .map(|e| map(e).and_then(|e2| target_index.get(&e2).copied()))
            .collect();
        let erased: Vec<bool> = self.alphabet.iter().map(|e| map(e).is_none()).collect();

        let closure = |set: &BTreeSet<u32>| -> BTreeSet<u32> {
            let mut out = set.clone();
            let mut stack: Vec<u32> = out.iter().copied().collect();
            while let Some(s) = stack.pop() {
                for (sym, &is_erased) in erased.iter().enumerate() {
                    if is_erased {
                        if let Some(t) = self.trans[s as usize][sym] {
                            if out.insert(t) {
                                stack.push(t);
                            }
                        }
                    }
                }
            }
            out
        };

        let start_set = closure(&BTreeSet::from([self.start as u32]));
        let mut ids: HashMap<BTreeSet<u32>, u32> = HashMap::new();
        let mut sets = vec![start_set.clone()];
        ids.insert(start_set, 0);
        let mut trans: Vec<Vec<Option<u32>>> = Vec::new();
        let mut accepting = Vec::new();
        let mut i = 0;
        while i < sets.len() {
            let set = sets[i].clone();
            accepting.push(set.iter().any(|&s| self.accepting[s as usize]));
            let mut row = vec![None; target.len()];
            for (j, _) in target.iter().enumerate() {
                let mut next = BTreeSet::new();
                for &s in &set {
                    for (sym, &m) in mapped.iter().enumerate() {
                        if m == Some(j) {
                            if let Some(t) = self.trans[s as usize][sym] {
                                next.insert(t);
                            }
                        }
                    }
                }
                if !next.is_empty() {
                    let next = closure(&next);
                    let id = *ids.entry(next.clone()).or_insert_with(|| {
                        sets.push(next);
                        (sets.len() - 1) as u32
                    });
                    row[j] = Some(id);
                }
            }
            trans.push(row);
            i += 1;
        }
        let index = index_of(&target);
        ConcreteDfa { alphabet: target, index, trans, accepting, start: 0 }
    }

    /// Inverse projection: lift to a larger alphabet, letting every symbol
    /// not in the current alphabet self-loop in every state.
    ///
    /// `L(lifted) = { h over big | h/self.alphabet ∈ L(self) }` — exactly
    /// the per-component condition of Def. 4/11.
    pub fn lift_to(&self, big: Arc<Vec<Event>>) -> ConcreteDfa {
        let k = big.len();
        let mut trans: Vec<Vec<Option<u32>>> = Vec::with_capacity(self.trans.len());
        for (s, _) in self.trans.iter().enumerate() {
            let mut row = Vec::with_capacity(k);
            for e in big.iter() {
                match self.index.get(e) {
                    Some(&sym) => row.push(self.trans[s][sym]),
                    None => row.push(Some(s as u32)),
                }
            }
            trans.push(row);
        }
        let index = index_of(&big);
        ConcreteDfa {
            alphabet: big,
            index,
            trans,
            accepting: self.accepting.clone(),
            start: self.start,
        }
    }

    /// Restrict to a sub-alphabet: words using dropped symbols are removed
    /// from the language (transitions on them become undefined).
    pub fn restrict_to(&self, small: Arc<Vec<Event>>) -> ConcreteDfa {
        let k = small.len();
        let mut trans: Vec<Vec<Option<u32>>> = Vec::with_capacity(self.trans.len());
        for (s, _) in self.trans.iter().enumerate() {
            let mut row = Vec::with_capacity(k);
            for e in small.iter() {
                match self.index.get(e) {
                    Some(&sym) => row.push(self.trans[s][sym]),
                    None => row.push(None),
                }
            }
            trans.push(row);
        }
        let index = index_of(&small);
        ConcreteDfa {
            alphabet: small,
            index,
            trans,
            accepting: self.accepting.clone(),
            start: self.start,
        }
    }

    /// Enumerate all accepted words of length ≤ `max_len` (for
    /// cross-validation against bounded exploration).
    pub fn enumerate_accepted(&self, max_len: usize) -> Vec<Vec<Event>> {
        let mut out = Vec::new();
        let mut frontier: Vec<(usize, Vec<Event>)> = vec![(self.start, Vec::new())];
        if self.accepting[self.start] {
            out.push(Vec::new());
        }
        for _ in 0..max_len {
            let mut next = Vec::new();
            for (s, word) in &frontier {
                for (sym, t) in self.trans[*s].iter().enumerate() {
                    if let Some(t) = t {
                        let mut w = word.clone();
                        w.push(self.alphabet[sym]);
                        if self.accepting[*t as usize] {
                            out.push(w.clone());
                        }
                        next.push((*t as usize, w));
                    }
                }
            }
            frontier = next;
            if frontier.is_empty() {
                break;
            }
        }
        out
    }

    /// Count accepted words per length, up to `max_len` (index = length).
    pub fn count_accepted(&self, max_len: usize) -> Vec<u64> {
        // Dynamic programming over state-occupancy counts.
        let n = self.trans.len();
        let mut counts = vec![0u64; n];
        counts[self.start] = 1;
        let mut out = Vec::with_capacity(max_len + 1);
        out.push(if self.accepting[self.start] { 1 } else { 0 });
        for _ in 0..max_len {
            let mut next = vec![0u64; n];
            for (s, &c) in counts.iter().enumerate() {
                if c == 0 {
                    continue;
                }
                for t in self.trans[s].iter().flatten() {
                    next[*t as usize] = next[*t as usize].saturating_add(c);
                }
            }
            let total: u64 = next
                .iter()
                .enumerate()
                .filter(|(s, _)| self.accepting[*s])
                .map(|(_, &c)| c)
                .fold(0u64, u64::saturating_add);
            out.push(total);
            counts = next;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{Re, Template, VarId};
    use pospec_alphabet::UniverseBuilder;
    use pospec_trace::{MethodId, ObjectId};

    struct Fix {
        u: Arc<Universe>,
        o: ObjectId,
        c: ObjectId,
        w1: ObjectId,
        ow: MethodId,
        w: MethodId,
        cw: MethodId,
        sigma: Arc<Vec<Event>>,
    }

    fn fix() -> Fix {
        let mut b = UniverseBuilder::new();
        let objects = b.object_class("Objects").unwrap();
        let o = b.object("o").unwrap();
        let c = b.object_in("c", objects).unwrap();
        let ow = b.method("OW").unwrap();
        let w = b.method("W").unwrap();
        let cw = b.method("CW").unwrap();
        let wits = b.class_witnesses(objects, 1).unwrap();
        let u = b.freeze();
        let w1 = wits[0];
        let mut sigma = Vec::new();
        for caller in [c, w1] {
            for m in [ow, w, cw] {
                sigma.push(Event::call(caller, o, m));
            }
        }
        Fix { u, o, c, w1, ow, w, cw, sigma: Arc::new(sigma) }
    }

    fn write_re(f: &Fix) -> Re {
        let objects = f.u.class_by_name("Objects").unwrap();
        let x = VarId(0);
        Re::seq([
            Re::lit(Template::call(x, f.o, f.ow)),
            Re::lit(Template::call(x, f.o, f.w)).star(),
            Re::lit(Template::call(x, f.o, f.cw)),
        ])
        .bind(x, objects)
        .star()
    }

    fn write_dfa(f: &Fix, mode: AcceptMode) -> ConcreteDfa {
        let nfa = Nfa::compile(&write_re(f));
        ConcreteDfa::from_nfa(&f.u, &nfa, Arc::clone(&f.sigma), mode)
    }

    #[test]
    fn determinization_preserves_membership() {
        let f = fix();
        let dfa = write_dfa(&f, AcceptMode::PrefixLive);
        let good = [
            Event::call(f.c, f.o, f.ow),
            Event::call(f.c, f.o, f.w),
            Event::call(f.c, f.o, f.cw),
            Event::call(f.w1, f.o, f.ow),
        ];
        assert!(dfa.accepts(good.iter()));
        let bad = [Event::call(f.c, f.o, f.ow), Event::call(f.w1, f.o, f.w)];
        assert!(!dfa.accepts(bad.iter()));
        assert!(dfa.accepts(std::iter::empty()));
    }

    #[test]
    fn exact_vs_prefix_mode() {
        let f = fix();
        let exact = write_dfa(&f, AcceptMode::Exact);
        let prefix = write_dfa(&f, AcceptMode::PrefixLive);
        let open = [Event::call(f.c, f.o, f.ow)];
        assert!(!exact.accepts(open.iter()), "open session is not a word");
        assert!(prefix.accepts(open.iter()), "but it is a prefix");
        // Exact ⊆ prefix closure.
        assert!(exact.included_in(&prefix).is_ok());
        assert!(prefix.included_in(&exact).is_err());
    }

    #[test]
    fn universal_and_empty() {
        let f = fix();
        let uni = ConcreteDfa::universal(Arc::clone(&f.sigma));
        let empty = ConcreteDfa::empty_lang(Arc::clone(&f.sigma));
        let eps = ConcreteDfa::eps_lang(Arc::clone(&f.sigma));
        assert!(uni.accepts([Event::call(f.c, f.o, f.w)].iter()));
        assert!(empty.is_empty_lang());
        assert!(!eps.is_empty_lang());
        assert!(eps.accepts_only_epsilon());
        assert!(!uni.accepts_only_epsilon());
        assert!(empty.accepts_only_epsilon());
        assert!(eps.included_in(&uni).is_ok());
        assert!(empty.included_in(&eps).is_ok());
    }

    #[test]
    fn inclusion_yields_shortest_counterexample() {
        let f = fix();
        let dfa = write_dfa(&f, AcceptMode::PrefixLive);
        let uni = ConcreteDfa::universal(Arc::clone(&f.sigma));
        assert!(dfa.included_in(&uni).is_ok());
        let cex = uni.included_in(&dfa).unwrap_err();
        assert_eq!(cex.len(), 1, "a single W or CW already violates Write");
        assert!(!dfa.accepts(cex.iter()));
    }

    #[test]
    fn intersection_and_union_respect_membership() {
        let f = fix();
        let dfa = write_dfa(&f, AcceptMode::PrefixLive);
        let uni = ConcreteDfa::universal(Arc::clone(&f.sigma));
        let inter = dfa.intersect(&uni);
        assert!(inter.equiv(&dfa));
        let un = dfa.union(&uni);
        assert!(un.equiv(&uni));
        let comp = dfa.complement();
        assert!(dfa.intersect(&comp).is_empty_lang());
        assert!(dfa.union(&comp).equiv(&uni));
    }

    #[test]
    fn erase_hides_internal_symbols() {
        let f = fix();
        // Language: OW W CW by c (exact), then erase OW/CW: only W visible.
        let re = Re::seq([
            Re::lit(Template::call(f.c, f.o, f.ow)),
            Re::lit(Template::call(f.c, f.o, f.w)),
            Re::lit(Template::call(f.c, f.o, f.cw)),
        ]);
        let nfa = Nfa::compile(&re);
        let dfa = ConcreteDfa::from_nfa(&f.u, &nfa, Arc::clone(&f.sigma), AcceptMode::Exact);
        let erased = dfa.erase(|e| e.method == f.ow || e.method == f.cw);
        assert_eq!(erased.alphabet().len(), 2, "only W symbols remain");
        let w_only = [Event::call(f.c, f.o, f.w)];
        assert!(erased.accepts(w_only.iter()));
        assert!(!erased.accepts(std::iter::empty()), "ε is not in the exact erased language");
    }

    #[test]
    fn lift_allows_foreign_symbols_freely() {
        let f = fix();
        // DFA over only c's symbols, lifted to the full alphabet.
        let small: Arc<Vec<Event>> =
            Arc::new(f.sigma.iter().filter(|e| e.caller == f.c).copied().collect());
        let re = Re::seq([
            Re::lit(Template::call(f.c, f.o, f.ow)),
            Re::lit(Template::call(f.c, f.o, f.cw)),
        ]);
        let nfa = Nfa::compile(&re);
        let dfa = ConcreteDfa::from_nfa(&f.u, &nfa, small, AcceptMode::PrefixLive);
        let lifted = dfa.lift_to(Arc::clone(&f.sigma));
        // Foreign (w1) events may interleave anywhere.
        let h = [
            Event::call(f.w1, f.o, f.w),
            Event::call(f.c, f.o, f.ow),
            Event::call(f.w1, f.o, f.ow),
            Event::call(f.c, f.o, f.cw),
        ];
        assert!(lifted.accepts(h.iter()));
        // But c's own projection must still obey the protocol.
        let bad = [Event::call(f.c, f.o, f.cw)];
        assert!(!lifted.accepts(bad.iter()));
    }

    #[test]
    fn restrict_drops_foreign_words() {
        let f = fix();
        let uni = ConcreteDfa::universal(Arc::clone(&f.sigma));
        let small: Arc<Vec<Event>> =
            Arc::new(f.sigma.iter().filter(|e| e.caller == f.c).copied().collect());
        let r = uni.restrict_to(Arc::clone(&small));
        assert!(r.accepts([Event::call(f.c, f.o, f.w)].iter()));
        assert_eq!(r.alphabet().len(), 3);
    }

    #[test]
    fn enumerate_and_count_agree() {
        let f = fix();
        let dfa = write_dfa(&f, AcceptMode::PrefixLive);
        let words = dfa.enumerate_accepted(4);
        let counts = dfa.count_accepted(4);
        for (len, &expected) in counts.iter().enumerate().take(5) {
            let n = words.iter().filter(|w| w.len() == len).count() as u64;
            assert_eq!(n, expected, "length {len}");
        }
        // Sanity: ε plus the two one-event openings.
        assert_eq!(counts[0], 1);
        assert_eq!(counts[1], 2);
    }

    #[test]
    fn membership_trie_wraps_a_predicate() {
        let f = fix();
        // Predicate: no more OW than CW+1, c only (a tiny counting spec).
        let member = |h: &Trace| {
            let mut open = 0i32;
            for e in h.iter() {
                if e.method == f.ow {
                    open += 1;
                } else if e.method == f.cw {
                    open -= 1;
                }
                if !(0..=1).contains(&open) {
                    return false;
                }
            }
            true
        };
        let dfa = ConcreteDfa::from_membership(Arc::clone(&f.sigma), 3, member);
        assert!(dfa.accepts([Event::call(f.c, f.o, f.ow)].iter()));
        assert!(!dfa.accepts([Event::call(f.c, f.o, f.ow), Event::call(f.w1, f.o, f.ow)].iter()));
        assert!(dfa.accepts(
            [
                Event::call(f.c, f.o, f.ow),
                Event::call(f.c, f.o, f.cw),
                Event::call(f.w1, f.o, f.ow)
            ]
            .iter()
        ));
    }

    #[test]
    fn length_at_most_truncates() {
        let f = fix();
        let k = ConcreteDfa::length_at_most(Arc::clone(&f.sigma), 2);
        assert!(k.accepts(std::iter::empty()));
        assert!(k.accepts([Event::call(f.c, f.o, f.w)].iter()));
        assert!(k.accepts([Event::call(f.c, f.o, f.w); 2].iter()));
        assert!(!k.accepts([Event::call(f.c, f.o, f.w); 3].iter()));
        // Intersecting with the universal language = all words ≤ 2.
        let uni = ConcreteDfa::universal(Arc::clone(&f.sigma));
        assert!(uni.intersect(&k).equiv(&k));
    }

    #[test]
    fn symbol_filter_restricts_alphabet_use() {
        let f = fix();
        let only_c = ConcreteDfa::symbol_filter(Arc::clone(&f.sigma), |e| e.caller == f.c);
        assert!(only_c.accepts([Event::call(f.c, f.o, f.w)].iter()));
        assert!(!only_c.accepts([Event::call(f.w1, f.o, f.w)].iter()));
        assert!(!only_c.accepts([Event::call(f.c, f.o, f.w), Event::call(f.w1, f.o, f.w)].iter()));
        assert!(only_c.accepts(std::iter::empty()));
    }

    #[test]
    fn map_symbols_renames_and_erases() {
        let f = fix();
        // Language: OW W CW by c (exact).
        let re = Re::seq([
            Re::lit(Template::call(f.c, f.o, f.ow)),
            Re::lit(Template::call(f.c, f.o, f.w)),
            Re::lit(Template::call(f.c, f.o, f.cw)),
        ]);
        let dfa = ConcreteDfa::from_nfa(
            &f.u,
            &Nfa::compile(&re),
            Arc::clone(&f.sigma),
            AcceptMode::Exact,
        );
        // φ: rename W ↦ OW, erase CW; target alphabet = sigma.
        let mapped = dfa.map_symbols(Arc::clone(&f.sigma), |e| {
            if e.method == f.cw {
                None
            } else if e.method == f.w {
                Some(Event::call(e.caller, e.callee, f.ow))
            } else {
                Some(*e)
            }
        });
        // Image: OW OW.
        let image_word = [Event::call(f.c, f.o, f.ow), Event::call(f.c, f.o, f.ow)];
        assert!(mapped.accepts(image_word.iter()));
        assert!(!mapped.accepts(image_word[..1].iter()), "exact mode: prefix not a word");
        // The erased CW contributes nothing: no 3-symbol words.
        assert!(mapped.enumerate_accepted(4).iter().all(|w| w.len() == 2));
    }

    #[test]
    fn state_introspection_api() {
        let f = fix();
        let dfa = write_dfa(&f, AcceptMode::PrefixLive);
        let s0 = dfa.start_state();
        assert!(dfa.is_accepting(s0), "ε is a member");
        let ow_sym = f.sigma.iter().position(|e| *e == Event::call(f.c, f.o, f.ow)).unwrap();
        let s1 = dfa.successor(s0, ow_sym).expect("OW opens a session");
        assert!(dfa.is_accepting(s1));
        assert_eq!(dfa.state_after([Event::call(f.c, f.o, f.ow)].iter()), Some(s1));
        let w_sym = f.sigma.iter().position(|e| *e == Event::call(f.w1, f.o, f.w)).unwrap();
        assert_eq!(dfa.successor(s1, w_sym), None, "wrong writer has no successor");
    }

    #[test]
    fn equiv_is_reflexive_and_detects_difference() {
        let f = fix();
        let a = write_dfa(&f, AcceptMode::PrefixLive);
        assert!(a.equiv(&a.clone()));
        let uni = ConcreteDfa::universal(Arc::clone(&f.sigma));
        assert!(!a.equiv(&uni));
    }
}
