//! The regular-expression AST over event templates.
//!
//! A [`Template`] is an event shape whose object positions may be bound
//! variables; a [`Re`] combines templates with the usual regular operators
//! plus the paper's binding operator `[R • x ∈ C]` ([`Re::Bind`]), which
//! scopes the variable `x` over `R` and re-binds it on every entry into
//! the scope.

use pospec_alphabet::Universe;
use pospec_trace::{Arg, ClassId, DataId, Event, MethodId, ObjectId};
use std::fmt;

/// A bound object variable (the `x` of `[… • x ∈ Objects]`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VarId(pub u32);

impl fmt::Display for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// An object position of a template.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TObj {
    /// A fixed object identity.
    Id(ObjectId),
    /// Any member of the class (no binding).
    Class(ClassId),
    /// A bound variable; its class is declared by the enclosing
    /// [`Re::Bind`].
    Var(VarId),
    /// Any object.
    Any,
}

impl From<ObjectId> for TObj {
    fn from(o: ObjectId) -> Self {
        TObj::Id(o)
    }
}
impl From<VarId> for TObj {
    fn from(v: VarId) -> Self {
        TObj::Var(v)
    }
}

/// The argument position of a template.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum TArg {
    /// Whatever the method signature admits (`W(_)` in Example 4).
    #[default]
    Auto,
    /// A specific named data value.
    Value(DataId),
}

/// An event template `⟨caller, callee, m(arg)⟩` with possibly-variable
/// object positions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Template {
    /// Caller position.
    pub caller: TObj,
    /// Callee position.
    pub callee: TObj,
    /// Method; `None` matches any method.
    pub method: Option<MethodId>,
    /// Argument position.
    pub arg: TArg,
}

impl Template {
    /// `⟨caller, callee, m(·)⟩` with signature-driven argument.
    pub fn call(caller: impl Into<TObj>, callee: impl Into<TObj>, method: MethodId) -> Self {
        Template {
            caller: caller.into(),
            callee: callee.into(),
            method: Some(method),
            arg: TArg::Auto,
        }
    }

    /// `⟨caller, callee, m(d)⟩` with a fixed argument value.
    pub fn call_value(
        caller: impl Into<TObj>,
        callee: impl Into<TObj>,
        method: MethodId,
        d: DataId,
    ) -> Self {
        Template {
            caller: caller.into(),
            callee: callee.into(),
            method: Some(method),
            arg: TArg::Value(d),
        }
    }

    /// Is the template *statically* unsatisfiable — can it never match any
    /// event?  (Both positions the same ground object, or the same
    /// variable: events have distinct endpoints.)
    pub fn is_unsatisfiable(&self) -> bool {
        match (self.caller, self.callee) {
            (TObj::Id(a), TObj::Id(b)) => a == b,
            (TObj::Var(a), TObj::Var(b)) => a == b,
            _ => false,
        }
    }

    /// The variables occurring in the template.
    pub fn vars(&self) -> Vec<VarId> {
        let mut v = Vec::new();
        if let TObj::Var(x) = self.caller {
            v.push(x);
        }
        if let TObj::Var(x) = self.callee {
            if !v.contains(&x) {
                v.push(x);
            }
        }
        v
    }

    /// Try to match a concrete event under an environment, returning the
    /// (possibly extended) environment on success.
    ///
    /// An unbound variable is bound to the event's object *if* that object
    /// belongs to the variable's declared class (checked by the caller via
    /// `class_ok`); here we only thread the binding.
    pub fn match_event(
        &self,
        u: &Universe,
        env: &Env,
        e: &Event,
        class_of_var: impl Fn(VarId) -> Option<ClassId>,
    ) -> Option<Env> {
        let mut env = env.clone();
        if !match_obj(u, &mut env, self.caller, e.caller, &class_of_var) {
            return None;
        }
        if !match_obj(u, &mut env, self.callee, e.callee, &class_of_var) {
            return None;
        }
        if let Some(m) = self.method {
            if e.method != m {
                return None;
            }
        }
        match self.arg {
            TArg::Auto => {}
            TArg::Value(d) => {
                if e.arg != Arg::Data(d) {
                    return None;
                }
            }
        }
        Some(env)
    }
}

fn match_obj(
    u: &Universe,
    env: &mut Env,
    pos: TObj,
    obj: ObjectId,
    class_of_var: &impl Fn(VarId) -> Option<ClassId>,
) -> bool {
    match pos {
        TObj::Any => true,
        TObj::Id(o) => o == obj,
        TObj::Class(c) => u.class_of_object(obj) == Some(c),
        TObj::Var(v) => match env.get(v) {
            Some(bound) => bound == obj,
            None => {
                let ok = match class_of_var(v) {
                    Some(c) => u.class_of_object(obj) == Some(c),
                    // A variable with no declared class ranges over Obj.
                    None => true,
                };
                if ok {
                    env.bind(v, obj);
                }
                ok
            }
        },
    }
}

/// A variable environment: a small sorted map from variables to objects.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Env(Vec<(VarId, ObjectId)>);

impl Env {
    /// The empty environment.
    pub fn new() -> Self {
        Self::default()
    }

    /// Look up a binding.
    pub fn get(&self, v: VarId) -> Option<ObjectId> {
        self.0.binary_search_by_key(&v, |&(k, _)| k).ok().map(|i| self.0[i].1)
    }

    /// Add or overwrite a binding.
    pub fn bind(&mut self, v: VarId, o: ObjectId) {
        match self.0.binary_search_by_key(&v, |&(k, _)| k) {
            Ok(i) => self.0[i].1 = o,
            Err(i) => self.0.insert(i, (v, o)),
        }
    }

    /// Remove a binding (on entering/leaving a bind scope).
    pub fn unbind(&mut self, v: VarId) {
        if let Ok(i) = self.0.binary_search_by_key(&v, |&(k, _)| k) {
            self.0.remove(i);
        }
    }

    /// Number of live bindings.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Is the environment empty?
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

/// A trace regular expression.
///
/// Structural equality and hashing let callers key memoization on the
/// expression *content* (e.g. the automaton cache), so rebuilding the
/// same expression in a different allocation still finds the entry.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Re {
    /// The empty language ∅.
    Empty,
    /// The language {ε}.
    Eps,
    /// A single event matching the template.
    Lit(Template),
    /// Sequential composition `R₁ R₂`.
    Seq(Box<Re>, Box<Re>),
    /// Alternation `R₁ | R₂`.
    Alt(Box<Re>, Box<Re>),
    /// Repetition `R*`.
    Star(Box<Re>),
    /// The binding operator `[R • x ∈ C]`: `x` is scoped over `R` and
    /// re-bound on each entry.  `class = None` lets `x` range over all of
    /// `Obj`.
    Bind {
        /// The bound variable.
        var: VarId,
        /// The class the variable ranges over (`x ∈ Objects`).
        class: Option<ClassId>,
        /// The scope body.
        body: Box<Re>,
    },
}

impl Re {
    /// A single event.
    pub fn lit(t: Template) -> Re {
        Re::Lit(t)
    }

    /// `R₁ R₂ … Rₙ`.
    pub fn seq(parts: impl IntoIterator<Item = Re>) -> Re {
        let mut it = parts.into_iter();
        let first = it.next().unwrap_or(Re::Eps);
        it.fold(first, |a, b| Re::Seq(Box::new(a), Box::new(b)))
    }

    /// `R₁ | R₂ | … | Rₙ`.
    pub fn alt(parts: impl IntoIterator<Item = Re>) -> Re {
        let mut it = parts.into_iter();
        let first = it.next().unwrap_or(Re::Empty);
        it.fold(first, |a, b| Re::Alt(Box::new(a), Box::new(b)))
    }

    /// `R*`.
    pub fn star(self) -> Re {
        Re::Star(Box::new(self))
    }

    /// `R⁺ = R R*`.
    pub fn plus(self) -> Re {
        Re::Seq(Box::new(self.clone()), Box::new(self.star()))
    }

    /// `R? = R | ε`.
    pub fn opt(self) -> Re {
        Re::Alt(Box::new(self), Box::new(Re::Eps))
    }

    /// `[self • var ∈ class]`.
    pub fn bind(self, var: VarId, class: impl Into<Option<ClassId>>) -> Re {
        Re::Bind { var, class: class.into(), body: Box::new(self) }
    }

    /// Does ε belong to the language?  (Syntactic nullability.)
    pub fn nullable(&self) -> bool {
        match self {
            Re::Empty => false,
            Re::Eps | Re::Star(_) => true,
            Re::Lit(_) => false,
            Re::Seq(a, b) => a.nullable() && b.nullable(),
            Re::Alt(a, b) => a.nullable() || b.nullable(),
            Re::Bind { body, .. } => body.nullable(),
        }
    }

    /// Does the expression mention the variable in any template?
    pub fn mentions_var(&self, v: VarId) -> bool {
        match self {
            Re::Empty | Re::Eps => false,
            Re::Lit(t) => t.vars().contains(&v),
            Re::Seq(a, b) | Re::Alt(a, b) => a.mentions_var(v) || b.mentions_var(v),
            Re::Star(a) => a.mentions_var(v),
            Re::Bind { var, body, .. } => *var != v && body.mentions_var(v),
        }
    }

    /// Language-preserving simplification: removes `∅`/`ε` units, collapses
    /// nested stars, prunes statically-unsatisfiable literals, and drops
    /// binders whose variable occurs in no template of the whole
    /// expression.  Shrinks the compiled NFA without changing
    /// `prs`/`in_lang` (law-tested in `simplify_preserves_language`).
    ///
    /// Note the binder rule is *global*: a `Bind` whose body does not use
    /// its variable still clears any outer binding of the same variable on
    /// scope entry, so it may only be removed when the variable appears
    /// nowhere at all.
    pub fn simplify(&self) -> Re {
        let mut used = Vec::new();
        self.collect_vars(&mut used);
        self.simplify_with(&used)
    }

    fn collect_vars(&self, out: &mut Vec<VarId>) {
        match self {
            Re::Empty | Re::Eps => {}
            Re::Lit(t) => {
                for v in t.vars() {
                    if !out.contains(&v) {
                        out.push(v);
                    }
                }
            }
            Re::Seq(a, b) | Re::Alt(a, b) => {
                a.collect_vars(out);
                b.collect_vars(out);
            }
            Re::Star(a) => a.collect_vars(out),
            Re::Bind { body, .. } => body.collect_vars(out),
        }
    }

    fn simplify_with(&self, used_vars: &[VarId]) -> Re {
        match self {
            Re::Empty => Re::Empty,
            Re::Eps => Re::Eps,
            Re::Lit(t) if t.is_unsatisfiable() => Re::Empty,
            Re::Lit(t) => Re::Lit(*t),
            Re::Seq(a, b) => match (a.simplify_with(used_vars), b.simplify_with(used_vars)) {
                (Re::Empty, _) | (_, Re::Empty) => Re::Empty,
                (Re::Eps, x) | (x, Re::Eps) => x,
                (x, y) => Re::Seq(Box::new(x), Box::new(y)),
            },
            Re::Alt(a, b) => match (a.simplify_with(used_vars), b.simplify_with(used_vars)) {
                (Re::Empty, x) | (x, Re::Empty) => x,
                (x, y) if x == y => x,
                (x, y) => Re::Alt(Box::new(x), Box::new(y)),
            },
            Re::Star(a) => match a.simplify_with(used_vars) {
                Re::Empty | Re::Eps => Re::Eps,
                Re::Star(inner) => Re::Star(inner),
                x => Re::Star(Box::new(x)),
            },
            Re::Bind { var, class, body } => {
                let body = body.simplify_with(used_vars);
                if !used_vars.contains(var) {
                    // The variable occurs in no template anywhere: the
                    // scope markers are globally inert.
                    body
                } else {
                    match body {
                        Re::Empty => Re::Empty,
                        b => Re::Bind { var: *var, class: *class, body: Box::new(b) },
                    }
                }
            }
        }
    }

    /// The number of AST nodes (used by benches to scale inputs).
    pub fn size(&self) -> usize {
        match self {
            Re::Empty | Re::Eps | Re::Lit(_) => 1,
            Re::Seq(a, b) | Re::Alt(a, b) => 1 + a.size() + b.size(),
            Re::Star(a) => 1 + a.size(),
            Re::Bind { body, .. } => 1 + body.size(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pospec_alphabet::UniverseBuilder;

    fn mini() -> (std::sync::Arc<Universe>, ObjectId, ObjectId, MethodId, ClassId) {
        let mut b = UniverseBuilder::new();
        let objects = b.object_class("Objects").unwrap();
        let o = b.object("o").unwrap();
        let c = b.object_in("c", objects).unwrap();
        let m = b.method("M").unwrap();
        b.class_witnesses(objects, 1).unwrap();
        b.anon_witnesses(1).unwrap();
        (b.freeze(), o, c, m, objects)
    }

    #[test]
    fn env_bind_get_unbind() {
        let mut env = Env::new();
        assert!(env.is_empty());
        env.bind(VarId(1), ObjectId(5));
        env.bind(VarId(0), ObjectId(7));
        assert_eq!(env.get(VarId(1)), Some(ObjectId(5)));
        assert_eq!(env.get(VarId(0)), Some(ObjectId(7)));
        assert_eq!(env.len(), 2);
        env.bind(VarId(1), ObjectId(9));
        assert_eq!(env.get(VarId(1)), Some(ObjectId(9)));
        env.unbind(VarId(1));
        assert_eq!(env.get(VarId(1)), None);
        assert_eq!(env.len(), 1);
        env.unbind(VarId(42)); // no-op
    }

    #[test]
    fn env_ordering_is_canonical() {
        let mut a = Env::new();
        a.bind(VarId(0), ObjectId(1));
        a.bind(VarId(1), ObjectId(2));
        let mut b = Env::new();
        b.bind(VarId(1), ObjectId(2));
        b.bind(VarId(0), ObjectId(1));
        assert_eq!(a, b, "insertion order must not matter");
    }

    #[test]
    fn template_matches_ground_event() {
        let (u, o, c, m, _) = mini();
        let t = Template::call(c, o, m);
        let e = Event::call(c, o, m);
        assert!(t.match_event(&u, &Env::new(), &e, |_| None).is_some());
        let wrong_dir = Event::call(o, c, m);
        assert!(t.match_event(&u, &Env::new(), &wrong_dir, |_| None).is_none());
    }

    #[test]
    fn variable_binds_on_first_match_and_sticks() {
        let (u, o, _, m, objects) = mini();
        let x = VarId(0);
        let t = Template::call(x, o, m);
        let wit = u.class_witnesses(objects).next().unwrap();
        let anon = u.anon_witnesses().next().unwrap();
        let e = Event::call(wit, o, m);
        let env = t
            .match_event(&u, &Env::new(), &e, |_| Some(objects))
            .expect("witness of Objects should bind");
        assert_eq!(env.get(x), Some(wit));
        // Once bound, a different caller no longer matches.
        let e2 = Event::call(anon, o, m);
        assert!(t.match_event(&u, &env, &e2, |_| Some(objects)).is_none());
        // And the binding respects the class: anon is not in Objects.
        assert!(t.match_event(&u, &Env::new(), &e2, |_| Some(objects)).is_none());
        // With no class declared, anything binds.
        assert!(t.match_event(&u, &Env::new(), &e2, |_| None).is_some());
    }

    #[test]
    fn class_position_matches_members_only() {
        let (u, o, c, m, objects) = mini();
        let t = Template::call(TObj::Class(objects), o, m);
        assert!(t.match_event(&u, &Env::new(), &Event::call(c, o, m), |_| None).is_some());
        let anon = u.anon_witnesses().next().unwrap();
        assert!(t.match_event(&u, &Env::new(), &Event::call(anon, o, m), |_| None).is_none());
    }

    #[test]
    fn unsatisfiable_templates_are_detected() {
        let (_, o, c, m, _) = mini();
        assert!(Template::call(o, o, m).is_unsatisfiable());
        assert!(!Template::call(c, o, m).is_unsatisfiable());
        let x = VarId(0);
        assert!(Template::call(x, x, m).is_unsatisfiable());
        let t = Template {
            caller: TObj::Var(x),
            callee: TObj::Var(VarId(1)),
            method: Some(m),
            arg: TArg::Auto,
        };
        assert!(!t.is_unsatisfiable());
    }

    #[test]
    fn nullability() {
        let (_, o, c, m, _) = mini();
        let l = Re::lit(Template::call(c, o, m));
        assert!(!l.nullable());
        assert!(l.clone().star().nullable());
        assert!(l.clone().opt().nullable());
        assert!(!l.clone().plus().nullable());
        assert!(Re::Eps.nullable());
        assert!(!Re::Empty.nullable());
        assert!(Re::seq([Re::Eps, Re::Eps]).nullable());
        assert!(!Re::seq([Re::Eps, l.clone()]).nullable());
        assert!(Re::alt([Re::Empty, Re::Eps]).nullable());
        assert!(l.bind(VarId(0), None).star().nullable());
    }

    #[test]
    fn simplify_removes_units_and_dead_branches() {
        let (_, o, c, m, objects) = mini();
        let l = Re::lit(Template::call(c, o, m));
        // ε and ∅ units.
        assert_eq!(Re::seq([Re::Eps, l.clone(), Re::Eps]).simplify(), l);
        assert_eq!(Re::Seq(Box::new(l.clone()), Box::new(Re::Empty)).simplify(), Re::Empty);
        assert_eq!(Re::alt([Re::Empty, l.clone()]).simplify(), l);
        // Unsatisfiable literal prunes its branch.
        let dead = Re::lit(Template::call(o, o, m));
        assert_eq!(Re::alt([dead.clone(), l.clone()]).simplify(), l);
        assert_eq!(dead.simplify(), Re::Empty);
        // Star collapses.
        assert_eq!(Re::Empty.star().simplify(), Re::Eps);
        assert_eq!(l.clone().star().star().simplify(), l.clone().star());
        // A binder over an unused variable disappears only when the
        // variable occurs nowhere.
        let unused = l.clone().bind(VarId(7), objects);
        assert_eq!(unused.simplify(), l.clone());
        // …but survives when the variable is used elsewhere.
        let lv = Re::lit(Template::call(VarId(7), o, m));
        let outer = Re::seq([lv.clone(), l.clone().bind(VarId(7), objects), lv.clone()])
            .bind(VarId(7), objects);
        let simplified = outer.simplify();
        // The inner binder must still be present: count Bind nodes.
        fn binds(re: &Re) -> usize {
            match re {
                Re::Bind { body, .. } => 1 + binds(body),
                Re::Seq(a, b) | Re::Alt(a, b) => binds(a) + binds(b),
                Re::Star(a) => binds(a),
                _ => 0,
            }
        }
        assert_eq!(binds(&simplified), 2, "rebind scopes are semantically load-bearing");
    }

    #[test]
    fn mentions_var_respects_shadowing() {
        let (_, o, _, m, objects) = mini();
        let x = VarId(0);
        let lv = Re::lit(Template::call(x, o, m));
        assert!(lv.mentions_var(x));
        assert!(!lv.clone().bind(x, objects).mentions_var(x), "bound occurrences are not free");
        assert!(Re::seq([lv.clone().bind(x, objects), lv.clone()]).mentions_var(x));
    }

    #[test]
    fn builders_shape_the_tree() {
        let (_, o, c, m, _) = mini();
        let l = Re::lit(Template::call(c, o, m));
        let s = Re::seq([l.clone(), l.clone(), l.clone()]);
        assert_eq!(s.size(), 5);
        let a = Re::alt([l.clone(), l.clone()]);
        assert_eq!(a.size(), 3);
        assert_eq!(Re::seq([]), Re::Eps);
        assert_eq!(Re::alt([]), Re::Empty);
    }
}
