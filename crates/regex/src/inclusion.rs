//! On-the-fly language inclusion `L(A) ∩ region ⊆ L(B↑)`.
//!
//! The eager pipeline materializes `lift(B)`, the region automaton, and
//! the full product `A × ¬lift(B)` before asking for a counterexample.
//! This module explores exactly the same product **lazily**: product
//! states `(a-state, lifted-b-state, length counters)` are discovered
//! breadth-first in symbol order and the search stops at the first
//! counterexample, so failing checks touch a fraction of the product and
//! no lifted automaton is ever built.
//!
//! The lifted view of `B` is simulated symbol-by-symbol: an `A`-symbol
//! that belongs to `B`'s alphabet steps `B`, any other symbol self-loops
//! (the inverse-projection semantics of [`ConcreteDfa::lift_to`]).  The
//! region bounds of the partial (predicate-trie) comparison are simulated
//! the same way — a concrete-length counter and a projected-length
//! counter, either of which prunes the branch when its bound is passed.
//!
//! Because both the eager and the lazy search are breadth-first in symbol
//! order over isomorphic graphs, the counterexample is the same word: the
//! lexicographically-least (in alphabet order) among the shortest
//! offending words, a property of the *language*, not the automaton.
//! [`lazy_lifted_inclusion`] therefore returns witnesses identical to the
//! eager `intersect(complement)`/`find_accepted_word` path even when the
//! operands have been minimized.

use crate::dfa::ConcreteDfa;
use pospec_trace::Event;
use std::collections::{HashMap, VecDeque};

/// The result of a lazy inclusion run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InclusionOutcome {
    /// A shortest word of `L(A) ∩ region ∖ L(B↑)`, if inclusion fails —
    /// identical to the eager product pipeline's witness.
    pub counterexample: Option<Vec<Event>>,
    /// Product states dequeued before the search concluded.
    pub explored: u64,
}

impl InclusionOutcome {
    /// Did the search stop early at a counterexample (instead of proving
    /// inclusion by exhausting the reachable product)?
    pub fn early_exit(&self) -> bool {
        self.counterexample.is_some()
    }
}

/// Dead lifted-`b` state marker.
const B_DEAD: u32 = u32::MAX;

/// For each `a`-symbol: `b`'s symbol index, or `None` for a foreign
/// symbol (which self-loops in the lifted view).
fn lift_map(a: &ConcreteDfa, b: &ConcreteDfa) -> Vec<Option<u32>> {
    a.alphabet.iter().map(|e| b.index.get(e).map(|&j| j as u32)).collect()
}

/// Check `L(a) ∩ region ⊆ L(lift(b))` on the fly, where `lift(b)` is
/// `b`'s inverse projection onto `a`'s alphabet and the region keeps the
/// words whose concrete length is at most `conc_bound` (if set) and whose
/// projection onto `b`'s alphabet is at most `proj_bound` long (if set).
///
/// Returns the first (shortest, lex-least) counterexample found, plus the
/// number of product states explored.  With both bounds `None` this is
/// exactly `a.included_in(&b.lift_to(a.alphabet))`, lazily.
pub fn lazy_lifted_inclusion(
    a: &ConcreteDfa,
    b: &ConcreteDfa,
    conc_bound: Option<usize>,
    proj_bound: Option<usize>,
) -> InclusionOutcome {
    let map = lift_map(a, b);
    // Node = (a-state, lifted-b-state, concrete length, projected length);
    // counters are only tracked (non-zero) when their bound is active.
    type Key = (u32, u32, u32, u32);
    let start: Key = (a.start as u32, b.start as u32, 0, 0);
    let mut ids: HashMap<Key, u32> = HashMap::new();
    let mut nodes: Vec<(Key, Option<(u32, u32)>)> = vec![(start, None)];
    ids.insert(start, 0);
    let mut q: VecDeque<u32> = VecDeque::from([0]);
    let mut explored = 0u64;
    while let Some(id) = q.pop_front() {
        explored += 1;
        let (sa, sb, ca, cb) = nodes[id as usize].0;
        let a_accepts = a.accepting[sa as usize];
        let b_accepts = sb != B_DEAD && b.accepting[sb as usize];
        if a_accepts && !b_accepts {
            // Reconstruct the witness along the parent chain.
            let mut word = Vec::new();
            let mut cur = id;
            while let Some((p, sym)) = nodes[cur as usize].1 {
                word.push(a.alphabet[sym as usize]);
                cur = p;
            }
            word.reverse();
            return InclusionOutcome { counterexample: Some(word), explored };
        }
        for (sym, ta) in a.trans[sa as usize].iter().enumerate() {
            let Some(ta) = ta else { continue };
            if let Some(bound) = conc_bound {
                if ca as usize + 1 > bound {
                    continue; // outside the region: the branch is silent
                }
            }
            let counted = map[sym].is_some();
            if let Some(bound) = proj_bound {
                if counted && cb as usize + 1 > bound {
                    continue;
                }
            }
            let tb = match (sb, map[sym]) {
                (B_DEAD, _) => B_DEAD,
                (sb, Some(j)) => match b.trans[sb as usize][j as usize] {
                    Some(t) => t,
                    None => B_DEAD,
                },
                (sb, None) => sb, // foreign symbol: self-loop
            };
            let next: Key = (
                *ta,
                tb,
                if conc_bound.is_some() { ca + 1 } else { 0 },
                if proj_bound.is_some() && counted { cb + 1 } else { cb },
            );
            if let std::collections::hash_map::Entry::Vacant(e) = ids.entry(next) {
                e.insert(nodes.len() as u32);
                nodes.push((next, Some((id, sym as u32))));
                q.push_back((nodes.len() - 1) as u32);
            }
        }
    }
    InclusionOutcome { counterexample: None, explored }
}

/// Does `a` accept a word *outside* the region — longer than `conc_bound`,
/// or with more than `proj_bound` symbols of `b`'s alphabet?  The lazy
/// form of `a.included_in(&region).is_err()`, deciding whether a partial
/// comparison clipped anything away.  Counters saturate one past their
/// bound, so the walk terminates on every automaton.
pub fn accepts_outside_bounds(
    a: &ConcreteDfa,
    b: &ConcreteDfa,
    conc_bound: Option<usize>,
    proj_bound: Option<usize>,
) -> bool {
    if conc_bound.is_none() && proj_bound.is_none() {
        return false;
    }
    let map = lift_map(a, b);
    let cap = |count: u32, bound: Option<usize>| match bound {
        Some(k) => count.min(k as u32 + 1),
        None => 0,
    };
    let over = |count: u32, bound: Option<usize>| match bound {
        Some(k) => count as usize > k,
        None => false,
    };
    let start = (a.start as u32, 0u32, 0u32);
    let mut seen = std::collections::HashSet::from([start]);
    let mut q = VecDeque::from([start]);
    while let Some((sa, ca, cb)) = q.pop_front() {
        if a.accepting[sa as usize] && (over(ca, conc_bound) || over(cb, proj_bound)) {
            return true;
        }
        for (sym, ta) in a.trans[sa as usize].iter().enumerate() {
            let Some(ta) = ta else { continue };
            let counted = map[sym].is_some();
            let next =
                (*ta, cap(ca + 1, conc_bound), cap(if counted { cb + 1 } else { cb }, proj_bound));
            if seen.insert(next) {
                q.push_back(next);
            }
        }
    }
    false
}

/// Does `a` accept a word of length ≥ `len`?  Used for the predicate-trie
/// horizon test: a member sitting on (or beyond) the depth horizon may
/// have unexplored extensions, so the verdict cannot be exact.  `len == 0`
/// asks whether the language is non-empty, which handles the depth-0 trie
/// uniformly (an empty language was explored completely even at depth 0).
pub fn accepts_word_of_length_at_least(a: &ConcreteDfa, len: usize) -> bool {
    let cap = len as u32;
    let start = (a.start as u32, 0u32);
    let mut seen = std::collections::HashSet::from([start]);
    let mut q = VecDeque::from([start]);
    while let Some((sa, l)) = q.pop_front() {
        if l == cap && a.accepting[sa as usize] {
            return true;
        }
        for ta in a.trans[sa as usize].iter().flatten() {
            let next = (*ta, (l + 1).min(cap));
            if seen.insert(next) {
                q.push_back(next);
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use pospec_trace::{MethodId, ObjectId};
    use std::sync::Arc;

    fn sigma(n: usize) -> Arc<Vec<Event>> {
        Arc::new(
            (0..n)
                .map(|i| Event::call(ObjectId(100 + i as u32), ObjectId(0), MethodId(i as u32)))
                .collect(),
        )
    }

    fn sub_alphabet(s: &Arc<Vec<Event>>, take: usize) -> Arc<Vec<Event>> {
        Arc::new(s.iter().take(take).copied().collect())
    }

    #[test]
    fn lazy_matches_eager_unbounded() {
        let s = sigma(3);
        let small = sub_alphabet(&s, 2);
        let a = ConcreteDfa::length_at_most(Arc::clone(&s), 3);
        let b = ConcreteDfa::length_at_most(Arc::clone(&small), 1);
        let eager = a.included_in(&b.lift_to(Arc::clone(&s)));
        let lazy = lazy_lifted_inclusion(&a, &b, None, None);
        assert_eq!(eager.err(), lazy.counterexample, "identical witness");
        assert!(lazy.early_exit());

        // And an inclusion that holds: a word ≤1 over the sub-alphabet
        // projects to ≤1 symbols of b's alphabet.
        let a2 = ConcreteDfa::length_at_most(Arc::clone(&small), 1).lift_to(Arc::clone(&s));
        let holds = lazy_lifted_inclusion(&a2, &b, None, None);
        assert_eq!(holds.counterexample, None);
        assert!(!holds.early_exit());
        assert!(holds.explored > 0);
    }

    #[test]
    fn early_exit_explores_less_than_the_product() {
        let s = sigma(2);
        let a = ConcreteDfa::universal(Arc::clone(&s));
        let b = ConcreteDfa::empty_lang(Arc::clone(&s));
        let out = lazy_lifted_inclusion(&a, &b, None, None);
        // The very first product state (ε) is already a counterexample.
        assert_eq!(out.counterexample, Some(vec![]));
        assert_eq!(out.explored, 1);
    }

    #[test]
    fn region_bounds_mask_deep_counterexamples() {
        let s = sigma(2);
        let a = ConcreteDfa::length_at_most(Arc::clone(&s), 5);
        let b = ConcreteDfa::length_at_most(Arc::clone(&s), 3);
        // Unbounded: fails with a length-4 witness.
        let unbounded = lazy_lifted_inclusion(&a, &b, None, None);
        assert_eq!(unbounded.counterexample.as_ref().map(Vec::len), Some(4));
        // Concrete region bound 3 clips the witness away.
        let clipped = lazy_lifted_inclusion(&a, &b, Some(3), None);
        assert_eq!(clipped.counterexample, None);
        // The projected bound does the same (b's alphabet is the whole
        // alphabet here, so the counters coincide).
        let clipped2 = lazy_lifted_inclusion(&a, &b, None, Some(3));
        assert_eq!(clipped2.counterexample, None);
    }

    #[test]
    fn projected_bound_counts_only_b_symbols() {
        let s = sigma(3);
        let small = sub_alphabet(&s, 1);
        let a = ConcreteDfa::universal(Arc::clone(&s));
        let b = ConcreteDfa::length_at_most(Arc::clone(&small), 0);
        // Projection bound 0: only words with zero `small`-symbols stay in
        // the region, and those are all accepted by lift(b). A word with
        // one small-symbol would be a counterexample but sits outside.
        let out = lazy_lifted_inclusion(&a, &b, None, Some(0));
        assert_eq!(out.counterexample, None);
        // With the bound at 1, the single-symbol word is inside and fails.
        let out = lazy_lifted_inclusion(&a, &b, None, Some(1));
        assert_eq!(out.counterexample.map(|w| w.len()), Some(1));
    }

    #[test]
    fn outside_bounds_detection() {
        let s = sigma(2);
        let small = sub_alphabet(&s, 1);
        let len3 = ConcreteDfa::length_at_most(Arc::clone(&s), 3);
        let b = ConcreteDfa::universal(Arc::clone(&small));
        assert!(!accepts_outside_bounds(&len3, &b, Some(3), None));
        assert!(accepts_outside_bounds(&len3, &b, Some(2), None));
        assert!(!accepts_outside_bounds(&len3, &b, None, None));
        // Projected: only symbol 0 counts. The sub-language of words with
        // ≤3 total symbols contains one with 3 counted symbols.
        assert!(accepts_outside_bounds(&len3, &b, None, Some(2)));
        assert!(!accepts_outside_bounds(&len3, &b, None, Some(3)));
    }

    #[test]
    fn length_at_least_handles_zero_uniformly() {
        let s = sigma(2);
        let uni = ConcreteDfa::universal(Arc::clone(&s));
        let empty = ConcreteDfa::empty_lang(Arc::clone(&s));
        let eps = ConcreteDfa::eps_lang(Arc::clone(&s));
        assert!(accepts_word_of_length_at_least(&uni, 0));
        assert!(accepts_word_of_length_at_least(&uni, 7));
        assert!(!accepts_word_of_length_at_least(&empty, 0), "empty language has no members");
        assert!(accepts_word_of_length_at_least(&eps, 0));
        assert!(!accepts_word_of_length_at_least(&eps, 1));
        let len2 = ConcreteDfa::length_at_most(Arc::clone(&s), 2);
        assert!(accepts_word_of_length_at_least(&len2, 2));
        assert!(!accepts_word_of_length_at_least(&len2, 3));
    }
}
