//! Thompson NFA with explicit binding scopes.
//!
//! [`Nfa::compile`] translates a [`Re`] into a graph of ε-edges, literal
//! edges and *scope marker* edges (`Enter v` / `Exit v`) that clear the
//! binding of `v`, giving the binding operator its per-iteration semantics:
//! each traversal of `[R • x ∈ C]` starts with `x` unbound, so a new
//! environment object may be chosen each round.
//!
//! Simulation states are pairs `(nfa state, environment)`; the environment
//! records the variables bound so far in the current scopes.  The
//! **liveness** analysis marks the NFA states from which an accepting state
//! is reachable through satisfiable edges; a trace `h` satisfies `h prs R`
//! exactly when, after consuming `h`, some simulation state has a live NFA
//! state (the word can still be completed — classes are infinite, so a
//! live template path can always be instantiated with fresh objects).

use crate::ast::{Env, Re, Template, VarId};
use pospec_alphabet::Universe;
use pospec_trace::{ClassId, Event};
use std::collections::{BTreeSet, HashMap};

/// One outgoing edge of an NFA state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Edge {
    /// Silent transition.
    Eps(usize),
    /// Enter the scope of a variable: clear its binding.
    Enter(VarId, usize),
    /// Exit the scope of a variable: clear its binding.
    Exit(VarId, usize),
    /// Consume one event matching the indexed template.
    Lit(u32, usize),
}

impl Edge {
    fn target(&self) -> usize {
        match *self {
            Edge::Eps(t) | Edge::Enter(_, t) | Edge::Exit(_, t) | Edge::Lit(_, t) => t,
        }
    }
}

/// A set of simulation states `(nfa state, environment)`.
pub type SimSet = BTreeSet<(usize, Env)>;

/// A compiled trace-regex automaton.
#[derive(Debug, Clone)]
pub struct Nfa {
    templates: Vec<Template>,
    var_class: HashMap<VarId, Option<ClassId>>,
    edges: Vec<Vec<Edge>>,
    start: usize,
    accept: usize,
    /// `live[s]`: an accepting state is reachable from `s` through
    /// satisfiable edges.
    live: Vec<bool>,
}

impl Nfa {
    /// Compile an expression.
    pub fn compile(re: &Re) -> Nfa {
        let mut b = Builder::default();
        let start = b.fresh();
        let accept = b.fresh();
        b.emit(re, start, accept);
        let live = b.liveness(accept);
        Nfa { templates: b.templates, var_class: b.var_class, edges: b.edges, start, accept, live }
    }

    /// Number of NFA states.
    pub fn state_count(&self) -> usize {
        self.edges.len()
    }

    /// The class declared for a variable by its `Bind` node.
    pub fn class_of_var(&self, v: VarId) -> Option<ClassId> {
        self.var_class.get(&v).copied().flatten()
    }

    /// ε-closure of a simulation set (over Eps/Enter/Exit edges).
    fn closure(&self, mut set: SimSet) -> SimSet {
        let mut stack: Vec<(usize, Env)> = set.iter().cloned().collect();
        while let Some((s, env)) = stack.pop() {
            for edge in &self.edges[s] {
                let next = match edge {
                    Edge::Eps(t) => Some((*t, env.clone())),
                    Edge::Enter(v, t) | Edge::Exit(v, t) => {
                        let mut e2 = env.clone();
                        e2.unbind(*v);
                        Some((*t, e2))
                    }
                    Edge::Lit(..) => None,
                };
                if let Some(pair) = next {
                    if set.insert(pair.clone()) {
                        stack.push(pair);
                    }
                }
            }
        }
        set
    }

    /// The initial simulation set.
    pub fn initial(&self) -> SimSet {
        let mut s = SimSet::new();
        s.insert((self.start, Env::new()));
        self.closure(s)
    }

    /// Advance the simulation by one event.
    pub fn step(&self, u: &Universe, set: &SimSet, e: &Event) -> SimSet {
        let mut next = SimSet::new();
        for (s, env) in set {
            for edge in &self.edges[*s] {
                if let Edge::Lit(ti, t) = edge {
                    let template = &self.templates[*ti as usize];
                    if let Some(env2) = template.match_event(u, env, e, |v| self.class_of_var(v)) {
                        next.insert((*t, env2));
                    }
                }
            }
        }
        self.closure(next)
    }

    /// Run the simulation over a whole sequence of events.
    pub fn run<'a>(&self, u: &Universe, events: impl IntoIterator<Item = &'a Event>) -> SimSet {
        let mut set = self.initial();
        for e in events {
            if set.is_empty() {
                break;
            }
            set = self.step(u, &set, e);
        }
        set
    }

    /// Does the set contain a live state (the consumed input is a prefix of
    /// a word of the language)?
    pub fn any_live(&self, set: &SimSet) -> bool {
        set.iter().any(|(s, _)| self.live[*s])
    }

    /// Does the set contain the accepting state (the consumed input is a
    /// word of the language)?
    pub fn any_accepting(&self, set: &SimSet) -> bool {
        set.iter().any(|(s, _)| *s == self.accept)
    }
}

#[derive(Default)]
struct Builder {
    templates: Vec<Template>,
    var_class: HashMap<VarId, Option<ClassId>>,
    edges: Vec<Vec<Edge>>,
}

impl Builder {
    fn fresh(&mut self) -> usize {
        self.edges.push(Vec::new());
        self.edges.len() - 1
    }

    fn edge(&mut self, from: usize, e: Edge) {
        self.edges[from].push(e);
    }

    fn template(&mut self, t: Template) -> u32 {
        if let Some(i) = self.templates.iter().position(|x| x == &t) {
            return i as u32;
        }
        self.templates.push(t);
        (self.templates.len() - 1) as u32
    }

    fn emit(&mut self, re: &Re, from: usize, to: usize) {
        match re {
            Re::Empty => {}
            Re::Eps => self.edge(from, Edge::Eps(to)),
            Re::Lit(t) => {
                let ti = self.template(*t);
                self.edge(from, Edge::Lit(ti, to));
            }
            Re::Seq(a, b) => {
                let mid = self.fresh();
                self.emit(a, from, mid);
                self.emit(b, mid, to);
            }
            Re::Alt(a, b) => {
                self.emit(a, from, to);
                self.emit(b, from, to);
            }
            Re::Star(a) => {
                let hub = self.fresh();
                self.edge(from, Edge::Eps(hub));
                self.emit(a, hub, hub);
                self.edge(hub, Edge::Eps(to));
            }
            Re::Bind { var, class, body } => {
                // Record the variable's class; a variable re-used under a
                // different class keeps the first declaration.
                self.var_class.entry(*var).or_insert(*class);
                let inner_start = self.fresh();
                let inner_end = self.fresh();
                self.edge(from, Edge::Enter(*var, inner_start));
                self.emit(body, inner_start, inner_end);
                self.edge(inner_end, Edge::Exit(*var, to));
            }
        }
    }

    /// Backwards reachability from `accept` over satisfiable edges.
    fn liveness(&self, accept: usize) -> Vec<bool> {
        let n = self.edges.len();
        // Build the reverse graph once.
        let mut rev: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (s, out) in self.edges.iter().enumerate() {
            for e in out {
                let ok = match e {
                    Edge::Lit(ti, _) => !self.templates[*ti as usize].is_unsatisfiable(),
                    _ => true,
                };
                if ok {
                    rev[e.target()].push(s);
                }
            }
        }
        let mut live = vec![false; n];
        let mut stack = vec![accept];
        live[accept] = true;
        while let Some(s) = stack.pop() {
            for &p in &rev[s] {
                if !live[p] {
                    live[p] = true;
                    stack.push(p);
                }
            }
        }
        live
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pospec_alphabet::UniverseBuilder;
    use pospec_trace::{MethodId, ObjectId};
    use std::sync::Arc;

    struct Fix {
        u: Arc<Universe>,
        o: ObjectId,
        c: ObjectId,
        objects: ClassId,
        ow: MethodId,
        w: MethodId,
        cw: MethodId,
    }

    fn fix() -> Fix {
        let mut b = UniverseBuilder::new();
        let objects = b.object_class("Objects").unwrap();
        let o = b.object("o").unwrap();
        let c = b.object_in("c", objects).unwrap();
        let ow = b.method("OW").unwrap();
        let w = b.method("W").unwrap();
        let cw = b.method("CW").unwrap();
        b.class_witnesses(objects, 2).unwrap();
        Fix { u: b.freeze(), o, c, objects, ow, w, cw }
    }

    /// The Write protocol of Example 1:
    /// `[[⟨x,o,OW⟩ ⟨x,o,W⟩* ⟨x,o,CW⟩] • x ∈ Objects]*`.
    fn write_re(f: &Fix) -> Re {
        let x = VarId(0);
        Re::seq([
            Re::lit(Template::call(x, f.o, f.ow)),
            Re::lit(Template::call(x, f.o, f.w)).star(),
            Re::lit(Template::call(x, f.o, f.cw)),
        ])
        .bind(x, f.objects)
        .star()
    }

    #[test]
    fn accepts_complete_bracketed_sessions() {
        let f = fix();
        let nfa = Nfa::compile(&write_re(&f));
        let w1 = f.u.class_witnesses(f.objects).next().unwrap();
        let evs = [
            Event::call(f.c, f.o, f.ow),
            Event::call(f.c, f.o, f.w),
            Event::call(f.c, f.o, f.cw),
            Event::call(w1, f.o, f.ow),
            Event::call(w1, f.o, f.cw),
        ];
        let set = nfa.run(&f.u, evs.iter());
        assert!(nfa.any_accepting(&set), "two complete sessions form a word");
        assert!(nfa.any_live(&set));
    }

    #[test]
    fn binding_pins_the_caller_within_a_session() {
        let f = fix();
        let nfa = Nfa::compile(&write_re(&f));
        let w1 = f.u.class_witnesses(f.objects).next().unwrap();
        // c opens, w1 tries to write: rejected (x is bound to c).
        let evs = [Event::call(f.c, f.o, f.ow), Event::call(w1, f.o, f.w)];
        let set = nfa.run(&f.u, evs.iter());
        assert!(set.is_empty(), "the binder forbids interleaved writers");
    }

    #[test]
    fn binding_releases_between_iterations() {
        let f = fix();
        let nfa = Nfa::compile(&write_re(&f));
        let w1 = f.u.class_witnesses(f.objects).next().unwrap();
        let evs = [
            Event::call(f.c, f.o, f.ow),
            Event::call(f.c, f.o, f.cw),
            Event::call(w1, f.o, f.ow),
            Event::call(w1, f.o, f.w),
        ];
        let set = nfa.run(&f.u, evs.iter());
        assert!(nfa.any_live(&set), "a new caller may open in the next round");
        assert!(!nfa.any_accepting(&set), "the second session is still open");
    }

    #[test]
    fn prefixes_are_live_but_not_accepting() {
        let f = fix();
        let nfa = Nfa::compile(&write_re(&f));
        let evs = [Event::call(f.c, f.o, f.ow), Event::call(f.c, f.o, f.w)];
        let set = nfa.run(&f.u, evs.iter());
        assert!(nfa.any_live(&set));
        assert!(!nfa.any_accepting(&set));
    }

    #[test]
    fn empty_input_is_accepted_by_starred_language() {
        let f = fix();
        let nfa = Nfa::compile(&write_re(&f));
        let set = nfa.initial();
        assert!(nfa.any_accepting(&set));
        assert!(nfa.any_live(&set));
    }

    #[test]
    fn non_members_of_the_class_cannot_bind() {
        let mut b = UniverseBuilder::new();
        let objects = b.object_class("Objects").unwrap();
        let o = b.object("o").unwrap();
        let m = b.method("M").unwrap();
        b.anon_witnesses(1).unwrap();
        b.class_witnesses(objects, 1).unwrap();
        let u = b.freeze();
        let x = VarId(0);
        let re = Re::lit(Template::call(x, o, m)).bind(x, objects).star();
        let nfa = Nfa::compile(&re);
        let anon = u.anon_witnesses().next().unwrap();
        let set = nfa.run(&u, [Event::call(anon, o, m)].iter());
        assert!(set.is_empty(), "anon is outside Objects");
        let wit = u.class_witnesses(objects).next().unwrap();
        let set2 = nfa.run(&u, [Event::call(wit, o, m)].iter());
        assert!(nfa.any_accepting(&set2));
    }

    #[test]
    fn unsatisfiable_literals_are_dead_for_liveness() {
        let f = fix();
        // ⟨o,o,OW⟩ can never match; the only word requires it, so nothing
        // is live beyond states that can bypass it.
        let re = Re::lit(Template::call(f.o, f.o, f.ow));
        let nfa = Nfa::compile(&re);
        let set = nfa.initial();
        assert!(!nfa.any_live(&set), "language is empty");
    }

    #[test]
    fn empty_language_re() {
        let f = fix();
        let nfa = Nfa::compile(&Re::Empty);
        let set = nfa.initial();
        assert!(!nfa.any_accepting(&set));
        assert!(!nfa.any_live(&set));
        let _ = f;
    }

    #[test]
    fn eps_language() {
        let nfa = Nfa::compile(&Re::Eps);
        let set = nfa.initial();
        assert!(nfa.any_accepting(&set));
        assert!(nfa.any_live(&set));
    }

    #[test]
    fn alternation_explores_both_branches() {
        let f = fix();
        let re = Re::alt([
            Re::lit(Template::call(f.c, f.o, f.ow)),
            Re::lit(Template::call(f.c, f.o, f.cw)),
        ]);
        let nfa = Nfa::compile(&re);
        for m in [f.ow, f.cw] {
            let set = nfa.run(&f.u, [Event::call(f.c, f.o, m)].iter());
            assert!(nfa.any_accepting(&set));
        }
        let set = nfa.run(&f.u, [Event::call(f.c, f.o, f.w)].iter());
        assert!(set.is_empty());
    }

    #[test]
    fn simulation_prunes_to_empty_and_stays_empty() {
        let f = fix();
        let nfa = Nfa::compile(&write_re(&f));
        let evs = [
            Event::call(f.c, f.o, f.w), // write before open: dead
            Event::call(f.c, f.o, f.ow),
        ];
        let set = nfa.run(&f.u, evs.iter());
        assert!(set.is_empty());
    }
}
