//! Hopcroft minimization of [`ConcreteDfa`].
//!
//! The refinement/composition pipeline determinizes trace-set views and
//! then combines them (product, lift, inclusion).  Subset construction
//! routinely produces automata with many language-equivalent states —
//! binding NFAs in particular blow up on per-caller scopes — and every
//! downstream product is quadratic in the operand sizes, so the automaton
//! cache minimizes each view once, right after determinization.
//!
//! The implementation is Hopcroft's partition-refinement algorithm with
//! the "smaller half" splitter rule, run over the *totalized* automaton
//! (the implicit dead state of a `None` transition participates as an
//! ordinary state and is dropped again on rebuild).  Unreachable states
//! are removed first.  The rebuilt automaton numbers blocks in
//! breadth-first symbol order from the start block, so structurally equal
//! inputs minimize to identical tables.

use crate::dfa::ConcreteDfa;
use std::collections::{BTreeSet, HashMap};

impl ConcreteDfa {
    /// The minimal automaton for the same language over the same alphabet.
    ///
    /// Language-preserving (`self.equiv(&self.minimize())` always holds)
    /// and idempotent up to state numbering; the result never has more
    /// states than the input.
    pub fn minimize(&self) -> ConcreteDfa {
        let k = self.alphabet.len();

        // 1. Keep only states reachable from the start.
        let mut old2new = vec![usize::MAX; self.trans.len()];
        let mut reach: Vec<usize> = vec![self.start];
        old2new[self.start] = 0;
        let mut qi = 0;
        while qi < reach.len() {
            let s = reach[qi];
            qi += 1;
            for t in self.trans[s].iter().flatten() {
                let t = *t as usize;
                if old2new[t] == usize::MAX {
                    old2new[t] = reach.len();
                    reach.push(t);
                }
            }
        }
        let r = reach.len();
        // 2. Totalize: the implicit dead state becomes explicit state `r`.
        let dead = r;
        let n = r + 1;
        let mut delta = vec![vec![dead; k]; n];
        let mut accepting = vec![false; n];
        for (i, &s) in reach.iter().enumerate() {
            accepting[i] = self.accepting[s];
            for (c, t) in self.trans[s].iter().enumerate() {
                if let Some(t) = t {
                    delta[i][c] = old2new[*t as usize];
                }
            }
        }
        // Inverse transitions: inv[c][t] = sources stepping to t on c.
        let mut inv: Vec<Vec<Vec<u32>>> = vec![vec![Vec::new(); n]; k];
        for (s, row) in delta.iter().enumerate() {
            for (c, &t) in row.iter().enumerate() {
                inv[c][t].push(s as u32);
            }
        }

        // 3. Hopcroft refinement from the accepting/rejecting split.
        let mut blocks: Vec<Vec<u32>> = Vec::new();
        let mut block_of = vec![0u32; n];
        for want in [false, true] {
            let group: Vec<u32> =
                (0..n as u32).filter(|&s| accepting[s as usize] == want).collect();
            if !group.is_empty() {
                let id = blocks.len() as u32;
                for &s in &group {
                    block_of[s as usize] = id;
                }
                blocks.push(group);
            }
        }
        let mut work: BTreeSet<(u32, u32)> = BTreeSet::new();
        if blocks.len() == 2 {
            let seed = u32::from(blocks[1].len() < blocks[0].len());
            for c in 0..k as u32 {
                work.insert((seed, c));
            }
        }
        while let Some(&(b, c)) = work.iter().next() {
            work.remove(&(b, c));
            // X = the c-preimage of block b (each source at most once:
            // delta is a function, so a state lands in one inv bucket).
            let mut preimage: Vec<u32> = Vec::new();
            for &t in &blocks[b as usize] {
                preimage.extend(inv[c as usize][t as usize].iter().copied());
            }
            let mut touched: HashMap<u32, Vec<u32>> = HashMap::new();
            for s in preimage {
                touched.entry(block_of[s as usize]).or_default().push(s);
            }
            let mut split: Vec<(u32, Vec<u32>)> = touched.into_iter().collect();
            split.sort_unstable_by_key(|(y, _)| *y);
            for (y, in_x) in split {
                if in_x.len() == blocks[y as usize].len() {
                    continue;
                }
                let moving: BTreeSet<u32> = in_x.into_iter().collect();
                let newb = blocks.len() as u32;
                let (stay, moved): (Vec<u32>, Vec<u32>) =
                    blocks[y as usize].iter().partition(|s| !moving.contains(s));
                blocks[y as usize] = stay;
                for &s in &moved {
                    block_of[s as usize] = newb;
                }
                blocks.push(moved);
                for c2 in 0..k as u32 {
                    if work.contains(&(y, c2)) {
                        // The pending splitter now covers only the shrunk
                        // y; add its complement so together they still
                        // cover the original block.
                        work.insert((newb, c2));
                    } else {
                        let smaller = if blocks[newb as usize].len() < blocks[y as usize].len() {
                            newb
                        } else {
                            y
                        };
                        work.insert((smaller, c2));
                    }
                }
            }
        }

        // 4. Rebuild the quotient, dropping the dead block and numbering
        //    live blocks in BFS symbol order from the start block.
        let dead_block = block_of[dead];
        if block_of[0] == dead_block {
            return ConcreteDfa::empty_lang(std::sync::Arc::clone(&self.alphabet));
        }
        let mut new_of_block: HashMap<u32, u32> = HashMap::new();
        let mut order: Vec<u32> = vec![block_of[0]];
        new_of_block.insert(block_of[0], 0);
        let mut trans: Vec<Vec<Option<u32>>> = Vec::new();
        let mut acc_out = Vec::new();
        let mut i = 0;
        while i < order.len() {
            let rep = blocks[order[i] as usize][0] as usize;
            acc_out.push(accepting[rep]);
            let mut row = Vec::with_capacity(k);
            for c in 0..k {
                let tb = block_of[delta[rep][c]];
                if tb == dead_block {
                    row.push(None);
                } else {
                    let id = *new_of_block.entry(tb).or_insert_with(|| {
                        order.push(tb);
                        (order.len() - 1) as u32
                    });
                    row.push(Some(id));
                }
            }
            trans.push(row);
            i += 1;
        }
        ConcreteDfa {
            alphabet: std::sync::Arc::clone(&self.alphabet),
            index: self.index.clone(),
            trans,
            accepting: acc_out,
            start: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pospec_trace::Event;
    use pospec_trace::{MethodId, ObjectId};
    use std::sync::Arc;

    fn sigma(n: usize) -> Arc<Vec<Event>> {
        Arc::new(
            (0..n)
                .map(|i| Event::call(ObjectId(100 + i as u32), ObjectId(0), MethodId(i as u32)))
                .collect(),
        )
    }

    /// A hand-built DFA with duplicated and unreachable states.
    fn redundant() -> ConcreteDfa {
        let alphabet = sigma(2);
        // States 1 and 2 are language-equivalent (both accept a*), state 3
        // is unreachable, state 4 is a trap equivalent to the dead state.
        ConcreteDfa {
            index: alphabet.iter().enumerate().map(|(i, e)| (*e, i)).collect(),
            alphabet,
            trans: vec![
                vec![Some(1), Some(2)],
                vec![Some(1), Some(4)],
                vec![Some(2), Some(4)],
                vec![Some(0), None],
                vec![Some(4), Some(4)],
            ],
            accepting: vec![true, true, true, false, false],
            start: 0,
        }
    }

    #[test]
    fn merges_equivalent_and_drops_dead_states() {
        let d = redundant();
        let m = d.minimize();
        assert!(m.equiv(&d), "language must be preserved");
        // 0 merges with 1/2; 3 unreachable; 4 merges with dead. Actually
        // 0 ≡ 1 ≡ 2 (all accept a* and die on b after the first step? no:
        // from 0, b leads to 2 which accepts). Just pin the count shrinks.
        assert!(m.state_count() < d.state_count());
        assert_eq!(m.minimize().state_count(), m.state_count(), "idempotent");
    }

    #[test]
    fn canonical_language_automata_are_fixed_points() {
        let s = sigma(3);
        for d in [
            ConcreteDfa::universal(Arc::clone(&s)),
            ConcreteDfa::eps_lang(Arc::clone(&s)),
            ConcreteDfa::length_at_most(Arc::clone(&s), 4),
        ] {
            let m = d.minimize();
            assert!(m.equiv(&d));
            assert_eq!(m.state_count(), d.state_count(), "already minimal");
        }
        let e = ConcreteDfa::empty_lang(Arc::clone(&s));
        let m = e.minimize();
        assert!(m.is_empty_lang());
        assert_eq!(m.state_count(), 1);
    }

    #[test]
    fn empty_language_with_many_states_collapses() {
        let alphabet = sigma(1);
        // A long chain that never accepts.
        let d = ConcreteDfa {
            index: alphabet.iter().enumerate().map(|(i, e)| (*e, i)).collect(),
            alphabet,
            trans: vec![vec![Some(1)], vec![Some(2)], vec![None]],
            accepting: vec![false, false, false],
            start: 0,
        };
        let m = d.minimize();
        assert!(m.is_empty_lang());
        assert_eq!(m.state_count(), 1);
    }

    #[test]
    fn counterexamples_are_stable_under_minimization() {
        let s = sigma(2);
        let small = ConcreteDfa::length_at_most(Arc::clone(&s), 2);
        let big = ConcreteDfa::length_at_most(Arc::clone(&s), 4);
        let w1 = big.included_in(&small).unwrap_err();
        let w2 = big.minimize().included_in(&small.minimize()).unwrap_err();
        assert_eq!(w1, w2, "shortest lex-least witness is language-determined");
    }

    #[test]
    fn minimization_preserves_counts_per_length() {
        let d = redundant();
        let m = d.minimize();
        assert_eq!(d.count_accepted(6), m.count_accepted(6));
    }
}
