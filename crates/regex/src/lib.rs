//! Trace regular expressions with the paper's `•` binding operator.
//!
//! The concrete trace sets of Johnsen & Owe (2002) are written with a
//! prefix-of-regular-expression predicate:
//!
//! ```text
//! T(Write) ≜ { h : Seq[α(Write)] | h prs [[⟨x,o,OW⟩ ⟨x,o,W⟩* ⟨x,o,CW⟩] • x ∈ Objects]* }
//! ```
//!
//! `h prs R` holds when `h` is a prefix of a word of the regular language
//! `R`; the binding operator `•` binds the variable `x` afresh for each
//! traversal of the enclosing loop, so a *different* environment object may
//! take the write lock each round.  Because any set `{h | h prs R}` is
//! prefix closed, these predicates define legal Def.-1 trace sets by
//! construction.
//!
//! This crate implements:
//!
//! * the expression AST ([`ast::Re`]) over event *templates* whose object
//!   positions may be variables ([`ast::Template`]);
//! * a Thompson-style NFA with explicit binding scopes ([`nfa`]), whose
//!   simulation states carry variable environments;
//! * the [`prs`](prs::prs) predicate itself, via NFA simulation plus a
//!   static liveness analysis (a simulation state counts only if an
//!   accepting state is still reachable from it);
//! * deterministic automata over a **finitized concrete alphabet**
//!   ([`dfa::ConcreteDfa`]): determinization, product, complement,
//!   language inclusion with shortest counterexamples, and hiding
//!   (erasing internal events to ε) — the machinery behind exact
//!   refinement and composition checking in `pospec-core`/`pospec-check`.

pub mod ast;
pub mod dfa;
pub mod inclusion;
pub mod minimize;
pub mod nfa;
pub mod prs;

pub use ast::{Env, Re, TArg, TObj, Template, VarId};
pub use dfa::{AcceptMode, ConcreteDfa};
pub use inclusion::{
    accepts_outside_bounds, accepts_word_of_length_at_least, lazy_lifted_inclusion,
    InclusionOutcome,
};
pub use nfa::Nfa;
pub use prs::{in_lang, prs, CompiledRe};
