//! The paper's `prs` predicate: *"h prs R denotes that the trace h is a
//! prefix of the regular expression R"* (§2, Example 1).
//!
//! `{h | h prs R}` is prefix closed by construction, so these predicates
//! always define legal trace sets.  [`CompiledRe`] caches the compiled NFA
//! so that membership tests inside exploration loops do not recompile.

use crate::ast::Re;
use crate::nfa::Nfa;
use pospec_alphabet::Universe;
use pospec_trace::Trace;

/// Does `h prs R` hold — is `h` a prefix of some word of `R`?
pub fn prs(u: &Universe, h: &Trace, re: &Re) -> bool {
    CompiledRe::new(re.clone()).prs(u, h)
}

/// Is `h` itself a word of `R`?
pub fn in_lang(u: &Universe, h: &Trace, re: &Re) -> bool {
    CompiledRe::new(re.clone()).in_lang(u, h)
}

/// An expression with its compiled NFA, for repeated membership tests.
#[derive(Debug, Clone)]
pub struct CompiledRe {
    re: Re,
    nfa: Nfa,
}

impl CompiledRe {
    /// Compile once.  The expression is simplified first (a
    /// language-preserving rewrite), which shrinks the NFA.
    pub fn new(re: Re) -> Self {
        let nfa = Nfa::compile(&re.simplify());
        CompiledRe { re, nfa }
    }

    /// The source expression.
    pub fn re(&self) -> &Re {
        &self.re
    }

    /// The compiled automaton.
    pub fn nfa(&self) -> &Nfa {
        &self.nfa
    }

    /// `h prs R`.
    pub fn prs(&self, u: &Universe, h: &Trace) -> bool {
        let set = self.nfa.run(u, h.iter());
        self.nfa.any_live(&set)
    }

    /// `h ∈ L(R)`.
    pub fn in_lang(&self, u: &Universe, h: &Trace) -> bool {
        let set = self.nfa.run(u, h.iter());
        self.nfa.any_accepting(&set)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{Template, VarId};
    use pospec_alphabet::UniverseBuilder;
    use pospec_trace::Event;

    #[test]
    fn prs_is_prefix_closed_on_write_protocol() {
        let mut b = UniverseBuilder::new();
        let objects = b.object_class("Objects").unwrap();
        let o = b.object("o").unwrap();
        let ow = b.method("OW").unwrap();
        let w = b.method("W").unwrap();
        let cw = b.method("CW").unwrap();
        let c = b.object_in("c", objects).unwrap();
        let u = b.freeze();

        let x = VarId(0);
        let re = Re::seq([
            Re::lit(Template::call(x, o, ow)),
            Re::lit(Template::call(x, o, w)).star(),
            Re::lit(Template::call(x, o, cw)),
        ])
        .bind(x, objects)
        .star();

        let full = Trace::from_events(vec![
            Event::call(c, o, ow),
            Event::call(c, o, w),
            Event::call(c, o, w),
            Event::call(c, o, cw),
        ]);
        let c_re = CompiledRe::new(re.clone());
        assert!(c_re.prs(&u, &full));
        assert!(c_re.in_lang(&u, &full));
        for p in full.prefixes() {
            assert!(c_re.prs(&u, &p), "prefix-closure violated at {p}");
        }
        // Interior prefixes are not words.
        assert!(!c_re.in_lang(&u, &full.prefix(2)));
        // A bad trace is not even a prefix.
        let bad = Trace::from_events(vec![Event::call(c, o, w)]);
        assert!(!prs(&u, &bad, &re));
        assert!(!in_lang(&u, &bad, &re));
    }
}
