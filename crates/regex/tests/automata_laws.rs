//! Property-based cross-validation of the automaton stack.
//!
//! The determinized [`ConcreteDfa`] must agree with direct NFA simulation
//! on every word; `prs` must define prefix-closed sets; the Boolean
//! constructions must satisfy their defining equations word-by-word.

use pospec_alphabet::{Universe, UniverseBuilder};
use pospec_regex::{AcceptMode, ConcreteDfa, Nfa, Re, Template, VarId};
use pospec_trace::{ClassId, Event, MethodId, ObjectId, Trace};
use proptest::prelude::*;
use std::sync::Arc;

struct Fix {
    u: Arc<Universe>,
    o: ObjectId,
    env: ClassId,
    methods: Vec<MethodId>,
    sigma: Arc<Vec<Event>>,
}

fn fix() -> Fix {
    let mut b = UniverseBuilder::new();
    let env = b.object_class("Env").unwrap();
    let o = b.object("o").unwrap();
    let methods: Vec<MethodId> = (0..3).map(|i| b.method(&format!("m{i}")).unwrap()).collect();
    let wits = b.class_witnesses(env, 2).unwrap();
    let u = b.freeze();
    let mut sigma = Vec::new();
    for &w in &wits {
        for &m in &methods {
            sigma.push(Event::call(w, o, m));
        }
    }
    Fix { u, o, env, methods, sigma: Arc::new(sigma) }
}

/// A random regex over the fixture's template pool, from a recipe of
/// (operator, literal) bytes.
fn random_re(f: &Fix, recipe: &[u8]) -> Re {
    fn build(f: &Fix, recipe: &[u8], pos: &mut usize, depth: usize) -> Re {
        let next = |pos: &mut usize| {
            let b = recipe.get(*pos).copied().unwrap_or(0);
            *pos += 1;
            b
        };
        let op = next(pos);
        let lit = |f: &Fix, b: u8| {
            let x = VarId(0);
            let m = f.methods[(b as usize) % f.methods.len()];
            match b % 3 {
                0 => Re::lit(Template::call(pospec_regex::TObj::Class(f.env), f.o, m)),
                1 => Re::lit(Template::call(x, f.o, m)),
                _ => Re::lit(Template {
                    caller: pospec_regex::TObj::Any,
                    callee: f.o.into(),
                    method: Some(m),
                    arg: Default::default(),
                }),
            }
        };
        if depth == 0 {
            return lit(f, next(pos));
        }
        match op % 6 {
            0 => Re::Seq(
                Box::new(build(f, recipe, pos, depth - 1)),
                Box::new(build(f, recipe, pos, depth - 1)),
            ),
            1 => Re::Alt(
                Box::new(build(f, recipe, pos, depth - 1)),
                Box::new(build(f, recipe, pos, depth - 1)),
            ),
            2 => build(f, recipe, pos, depth - 1).star(),
            3 => build(f, recipe, pos, depth - 1).bind(VarId(0), f.env),
            4 => Re::Eps,
            _ => lit(f, next(pos)),
        }
    }
    let mut pos = 0;
    build(f, recipe, &mut pos, 3)
}

fn word(f: &Fix, picks: &[u8]) -> Vec<Event> {
    picks.iter().map(|&p| f.sigma[(p as usize) % f.sigma.len()]).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// DFA membership (both modes) agrees with direct NFA simulation on
    /// random words.
    #[test]
    fn dfa_agrees_with_nfa(recipe in prop::collection::vec(any::<u8>(), 12),
                           picks in prop::collection::vec(any::<u8>(), 0..8)) {
        let f = fix();
        let re = random_re(&f, &recipe);
        let nfa = Nfa::compile(&re);
        let exact = ConcreteDfa::from_nfa(&f.u, &nfa, Arc::clone(&f.sigma), AcceptMode::Exact);
        let live = ConcreteDfa::from_nfa(&f.u, &nfa, Arc::clone(&f.sigma), AcceptMode::PrefixLive);
        let w = word(&f, &picks);
        let sim = nfa.run(&f.u, w.iter());
        prop_assert_eq!(exact.accepts(w.iter()), nfa.any_accepting(&sim));
        prop_assert_eq!(live.accepts(w.iter()), nfa.any_live(&sim));
    }

    /// `{h | h prs R}` is prefix closed, and words of `L(R)` satisfy prs.
    #[test]
    fn prs_sets_are_prefix_closed(recipe in prop::collection::vec(any::<u8>(), 12),
                                  picks in prop::collection::vec(any::<u8>(), 0..8)) {
        let f = fix();
        let re = random_re(&f, &recipe);
        let h = Trace::from_events(word(&f, &picks));
        if pospec_regex::in_lang(&f.u, &h, &re) {
            prop_assert!(pospec_regex::prs(&f.u, &h, &re));
        }
        if pospec_regex::prs(&f.u, &h, &re) {
            for p in h.proper_prefixes() {
                prop_assert!(pospec_regex::prs(&f.u, &p, &re), "prefix {p} escaped");
            }
        }
    }

    /// Boolean constructions satisfy their defining equations on words.
    #[test]
    fn boolean_constructions_pointwise(recipe_a in prop::collection::vec(any::<u8>(), 10),
                                       recipe_b in prop::collection::vec(any::<u8>(), 10),
                                       picks in prop::collection::vec(any::<u8>(), 0..7)) {
        let f = fix();
        let da = ConcreteDfa::from_nfa(
            &f.u, &Nfa::compile(&random_re(&f, &recipe_a)), Arc::clone(&f.sigma), AcceptMode::Exact);
        let db = ConcreteDfa::from_nfa(
            &f.u, &Nfa::compile(&random_re(&f, &recipe_b)), Arc::clone(&f.sigma), AcceptMode::Exact);
        let w = word(&f, &picks);
        prop_assert_eq!(da.intersect(&db).accepts(w.iter()), da.accepts(w.iter()) && db.accepts(w.iter()));
        prop_assert_eq!(da.union(&db).accepts(w.iter()), da.accepts(w.iter()) || db.accepts(w.iter()));
        prop_assert_eq!(da.complement().accepts(w.iter()), !da.accepts(w.iter()));
    }

    /// Inclusion is sound and complete over the finite alphabet:
    /// `included_in` returns Ok iff no accepted word of A is rejected by B
    /// (checked on the witness and on random words).
    #[test]
    fn inclusion_witnesses_are_genuine(recipe_a in prop::collection::vec(any::<u8>(), 10),
                                       recipe_b in prop::collection::vec(any::<u8>(), 10)) {
        let f = fix();
        let da = ConcreteDfa::from_nfa(
            &f.u, &Nfa::compile(&random_re(&f, &recipe_a)), Arc::clone(&f.sigma), AcceptMode::PrefixLive);
        let db = ConcreteDfa::from_nfa(
            &f.u, &Nfa::compile(&random_re(&f, &recipe_b)), Arc::clone(&f.sigma), AcceptMode::PrefixLive);
        match da.included_in(&db) {
            Ok(()) => {
                // Spot-check: every enumerated word of A is in B.
                for w in da.enumerate_accepted(3) {
                    prop_assert!(db.accepts(w.iter()));
                }
            }
            Err(w) => {
                prop_assert!(da.accepts(w.iter()), "witness must be accepted by A");
                prop_assert!(!db.accepts(w.iter()), "witness must be rejected by B");
            }
        }
        // Reflexivity and union-upper-bound.
        prop_assert!(da.included_in(&da).is_ok());
        prop_assert!(da.included_in(&da.union(&db)).is_ok());
        prop_assert!(da.intersect(&db).included_in(&da).is_ok());
    }

    /// Erasure is a projection: erasing symbols then reading a word equals
    /// reading any interleaving with hidden symbols in the original —
    /// checked in the sound direction (project an accepted original word).
    #[test]
    fn erase_projects_accepted_words(recipe in prop::collection::vec(any::<u8>(), 12)) {
        let f = fix();
        let hidden_method = f.methods[0];
        let da = ConcreteDfa::from_nfa(
            &f.u, &Nfa::compile(&random_re(&f, &recipe)), Arc::clone(&f.sigma), AcceptMode::PrefixLive);
        let erased = da.erase(|e| e.method == hidden_method);
        for w in da.enumerate_accepted(4) {
            let projected: Vec<Event> =
                w.iter().filter(|e| e.method != hidden_method).copied().collect();
            prop_assert!(
                erased.accepts(projected.iter()),
                "projection of an accepted word must be accepted after erasure"
            );
        }
    }

    /// `Re::simplify` preserves the language (both exact and prefix
    /// modes) while never growing the AST.
    #[test]
    fn simplify_preserves_language(recipe in prop::collection::vec(any::<u8>(), 14)) {
        let f = fix();
        let re = random_re(&f, &recipe);
        let simplified = re.simplify();
        prop_assert!(simplified.size() <= re.size(), "simplify must not grow the tree");
        for mode in [AcceptMode::Exact, AcceptMode::PrefixLive] {
            let a = ConcreteDfa::from_nfa(&f.u, &Nfa::compile(&re), Arc::clone(&f.sigma), mode);
            let b = ConcreteDfa::from_nfa(
                &f.u, &Nfa::compile(&simplified), Arc::clone(&f.sigma), mode);
            prop_assert!(a.equiv(&b), "language changed under simplify ({mode:?})");
        }
    }

    /// Lifting then restricting is the identity on the language.
    #[test]
    fn lift_then_restrict_roundtrips(recipe in prop::collection::vec(any::<u8>(), 12),
                                     picks in prop::collection::vec(any::<u8>(), 0..6)) {
        let f = fix();
        // Small alphabet: method 0 only.
        let small: Arc<Vec<Event>> = Arc::new(
            f.sigma.iter().filter(|e| e.method == f.methods[0]).copied().collect());
        let da = ConcreteDfa::from_nfa(
            &f.u, &Nfa::compile(&random_re(&f, &recipe)), Arc::clone(&small), AcceptMode::PrefixLive);
        let roundtrip = da.lift_to(Arc::clone(&f.sigma)).restrict_to(Arc::clone(&small));
        let w: Vec<Event> = word(&f, &picks)
            .into_iter()
            .filter(|e| e.method == f.methods[0])
            .collect();
        prop_assert_eq!(roundtrip.accepts(w.iter()), da.accepts(w.iter()));
    }
}
