//! Edit construction shared by the fix-attaching passes.
//!
//! The passes decide *when* a rewrite is safe (each guard is documented
//! at its attachment site); this module only turns that decision into
//! tidy [`TextEdit`]s: statement deletions that also swallow the
//! trailing `;` and any whitespace the statement leaves behind, and the
//! rendering of alphabet granules back into template source for the
//! widen-alphabet suggestion.

use pospec_alphabet::{ArgGranule, EventGranule, EventSet, MethodGranule, ObjGranule, Universe};
use pospec_lang::parser::ReAst;
use pospec_lang::{Span, TextEdit};
use std::collections::BTreeMap;
use std::sync::Arc;

/// A deletion of the statement covered by `span`, extended over the
/// trailing `;` (when the span stops short of it) and over the
/// whitespace the removal would orphan: a statement alone on its line
/// disappears with the whole line.
pub(crate) fn deletion_edit(src: &str, span: Span) -> TextEdit {
    let bytes = src.as_bytes();
    let start = (span.offset as usize).min(src.len());
    let mut end = (start + span.len as usize).min(src.len());
    // Swallow the statement's `;` when the span excludes it.
    let mut probe = end;
    while probe < bytes.len() && (bytes[probe] == b' ' || bytes[probe] == b'\t') {
        probe += 1;
    }
    if probe < bytes.len() && bytes[probe] == b';' {
        end = probe + 1;
    }
    let line_start = src[..start].rfind('\n').map(|i| i + 1).unwrap_or(0);
    let prefix_blank = src[line_start..start].trim().is_empty();
    let mut after = end;
    while after < bytes.len() && (bytes[after] == b' ' || bytes[after] == b'\t') {
        after += 1;
    }
    let rest_blank = after >= bytes.len() || bytes[after] == b'\n';
    if prefix_blank && rest_blank {
        // The statement owns its line: delete the line.
        let line_end = if after < bytes.len() { after + 1 } else { after };
        return TextEdit::delete(line_start, line_end);
    }
    if rest_blank {
        // Text precedes on the line: pull the deletion back over the
        // separating whitespace so no trailing blanks remain.
        let mut s = start;
        while s > line_start && (bytes[s - 1] == b' ' || bytes[s - 1] == b'\t') {
            s -= 1;
        }
        return TextEdit::delete(s, after);
    }
    // Text follows on the line: swallow the separating whitespace after
    // the statement instead.
    TextEdit::delete(start, after)
}

/// Render `g` back into alphabet-template source (`<caller, callee,
/// M(arg)>`), or `None` when the granule has no template denotation
/// (anonymous-environment or undeclared-method blocks).
///
/// Class-rest blocks render as the *class name*, which denotes the rest
/// **plus every declared member** — a superset of `g`.  The
/// widen-alphabet call site tolerates that: any extra granule the
/// template drags in belongs to the abstract spec's alphabet too (its
/// patterns expand classes the same way), so the widened alphabet is
/// exactly `α(c) ∪ α(a)`-bounded.
pub(crate) fn granule_template_source(u: &Universe, g: &EventGranule) -> Option<String> {
    let endpoint = |o: &ObjGranule| match o {
        ObjGranule::Named(id) => Some(u.object_name(*id).to_string()),
        ObjGranule::ClassRest(c) => Some(u.class_name(*c).to_string()),
        ObjGranule::Anon => None,
    };
    let caller = endpoint(&g.caller)?;
    let callee = endpoint(&g.callee)?;
    let method = match &g.method {
        MethodGranule::Named(m) => u.method_name(*m).to_string(),
        MethodGranule::Other => return None,
    };
    let arg = match &g.arg {
        ArgGranule::None => String::new(),
        ArgGranule::NamedData(d) => format!("({})", u.data_name(*d)),
        ArgGranule::DataRest(_) => "(_)".to_string(),
        ArgGranule::AnyArg => return None,
    };
    Some(format!("<{caller}, {callee}, {method}{arg}>"))
}

/// The event sets of every template literal of `re`, with binder
/// variables resolved to their classes — `None` when any literal fails
/// to resolve (unknown names were already reported; the caller then
/// declines to attach a fix rather than guess).
pub(crate) fn regex_literal_sets(u: &Arc<Universe>, re: &ReAst) -> Option<Vec<EventSet>> {
    fn walk(
        u: &Arc<Universe>,
        re: &ReAst,
        scope: &mut BTreeMap<String, pospec_trace::ClassId>,
        out: &mut Vec<EventSet>,
    ) -> Option<()> {
        match re {
            ReAst::Eps => Some(()),
            ReAst::Lit(t) => {
                out.push(crate::context::pattern_set_scoped(u, t, scope)?);
                Some(())
            }
            ReAst::Seq(ps) | ReAst::Alt(ps) => {
                for p in ps {
                    walk(u, p, scope, out)?;
                }
                Some(())
            }
            ReAst::Star(r) | ReAst::Plus(r) | ReAst::Opt(r) | ReAst::Group(r) => {
                walk(u, r, scope, out)
            }
            ReAst::Bind { body, var, class, .. } => {
                let c = u.class_by_name(class)?;
                let shadowed = scope.insert(var.clone(), c);
                let r = walk(u, body, scope, out);
                match shadowed {
                    Some(old) => {
                        scope.insert(var.clone(), old);
                    }
                    None => {
                        scope.remove(var);
                    }
                }
                r
            }
        }
    }
    let mut out = Vec::new();
    walk(u, re, &mut BTreeMap::new(), &mut out)?;
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pospec_lang::apply_edits;

    fn span_of(src: &str, needle: &str) -> Span {
        let off = src.find(needle).expect("needle") as u32;
        Span { line: 1, col: off + 1, offset: off, len: needle.len() as u32 }
    }

    #[test]
    fn deleting_a_whole_line_statement_removes_the_line() {
        let src = "universe {\n  object o;\n  object dead;\n}\n";
        let e = deletion_edit(src, span_of(src, "object dead;"));
        assert_eq!(apply_edits(src, &[e]).unwrap(), "universe {\n  object o;\n}\n");
    }

    #[test]
    fn deleting_mid_line_swallows_following_whitespace() {
        let src = "alphabet { <a, b, M>; <c, d, M>; }\n";
        let e = deletion_edit(src, span_of(src, "<a, b, M>"));
        assert_eq!(apply_edits(src, &[e]).unwrap(), "alphabet { <c, d, M>; }\n");
    }

    #[test]
    fn deleting_the_last_statement_on_a_line_trims_backwards() {
        let src = "  <a, b, M>; <c, d, M>;\n";
        let e = deletion_edit(src, span_of(src, "<c, d, M>"));
        assert_eq!(apply_edits(src, &[e]).unwrap(), "  <a, b, M>;\n");
    }

    #[test]
    fn span_already_covering_the_semicolon_is_not_extended_past_it() {
        let src = "universe { object dead; object o; }\n";
        let e = deletion_edit(src, span_of(src, "object dead;"));
        assert_eq!(apply_edits(src, &[e]).unwrap(), "universe { object o; }\n");
    }
}
