//! Shared analysis state: per-spec elaboration with error recovery.
//!
//! Unlike `pospec_lang::elaborate`, which aborts at the first error,
//! the linter elaborates every `spec` block *independently* against the
//! one shared universe, so a broken spec does not hide findings in its
//! neighbours.  Elaboration failures of specs the names pass judged
//! clean are exactly Def.-1 violations and surface as `P009`.

use crate::diag::{Code, DiagSink, Diagnostic};
use pospec_alphabet::{ArgSpec, EventPattern, EventSet, ObjSpec, Universe};
use pospec_core::{DfaCache, Specification};
use pospec_lang::elab::elaborate_spec;
use pospec_lang::parser::{ArgAst, Ast, TemplateAst};
use pospec_lang::ElabSession;
use pospec_regex::ConcreteDfa;
use std::collections::BTreeMap;
use std::sync::Arc;

/// One `spec` block's analysis state.
pub(crate) struct SpecInfo {
    /// Index into `ast.specs`.
    pub decl: usize,
    /// The elaborated specification, when elaboration succeeded.
    pub spec: Option<Specification>,
    /// The event set of each alphabet template, in declaration order
    /// (`None` when the template did not resolve).
    pub template_sets: Vec<Option<EventSet>>,
}

/// Everything the semantic passes share.
pub(crate) struct Ctx<'a> {
    pub ast: &'a Ast,
    /// The original document text (fix edits splice into it).
    pub src: &'a str,
    pub universe: Arc<Universe>,
    pub specs: Vec<SpecInfo>,
    /// Specifications the development statements can reference: every
    /// elaborated spec (first declaration wins) plus successfully
    /// composed `compose` results, inserted by the composition pass.
    pub dev: BTreeMap<String, Specification>,
    /// Name → index into `specs` (first declaration wins), so per-leaf
    /// lookups stay O(log n) on thousand-spec documents.
    by_name: BTreeMap<String, usize>,
    pub depth: usize,
    pub cache: &'a DfaCache,
}

impl<'a> Ctx<'a> {
    #[allow(clippy::too_many_arguments)]
    pub fn build(
        ast: &'a Ast,
        src: &'a str,
        universe: Arc<Universe>,
        dirty: &[bool],
        depth: usize,
        cache: &'a DfaCache,
        mut session: Option<&mut ElabSession>,
        sink: &mut DiagSink,
    ) -> Ctx<'a> {
        let mut specs = Vec::new();
        let mut dev = BTreeMap::new();
        let mut by_name = BTreeMap::new();
        for (i, sd) in ast.specs.iter().enumerate() {
            by_name.entry(sd.name.clone()).or_insert(i);
            let spec = if dirty[i] {
                None
            } else {
                let elaborated = match session.as_deref_mut() {
                    Some(s) => s.spec(&universe, sd).map(|(spec, _, _)| spec),
                    None => elaborate_spec(&universe, sd),
                };
                match elaborated {
                    Ok(s) => Some(s),
                    Err(e) => {
                        sink.push(Diagnostic::new(Code::P009, e.message).at(e.span));
                        None
                    }
                }
            };
            if let Some(s) = &spec {
                dev.entry(sd.name.clone()).or_insert_with(|| s.clone());
            }
            let template_sets = sd.alphabet.iter().map(|t| pattern_set(&universe, t)).collect();
            specs.push(SpecInfo { decl: i, spec, template_sets });
        }
        Ctx { ast, src, universe, specs, dev, by_name, depth, cache }
    }

    /// Find the `SpecInfo` of the first declaration named `name`.
    pub fn spec_by_name(&self, name: &str) -> Option<&SpecInfo> {
        self.by_name.get(name).map(|&i| &self.specs[i])
    }

    /// The cached automaton of `spec`'s trace set over its own
    /// alphabet, or `None` when the set has no exact automaton view.
    pub fn dfa(&self, spec: &Specification) -> Option<Arc<ConcreteDfa>> {
        if !spec.trace_set().is_regular() {
            return None;
        }
        Some(self.cache.traceset_dfa(&self.universe, spec.trace_set(), spec.alphabet(), self.depth))
    }
}

/// The event set one alphabet template denotes (the linter's own
/// resolution, tolerant of unknown names: those return `None` and were
/// already reported by the names pass).
fn pattern_set(u: &Arc<Universe>, t: &TemplateAst) -> Option<EventSet> {
    pattern_set_scoped(u, t, &BTreeMap::new())
}

/// Like [`pattern_set`], with binder variables in scope: an endpoint
/// naming a `[ R . x in C ]` variable denotes its class (the exact
/// over-approximation the elaborator uses for `x`'s range).
pub(crate) fn pattern_set_scoped(
    u: &Arc<Universe>,
    t: &TemplateAst,
    scope: &BTreeMap<String, pospec_trace::ClassId>,
) -> Option<EventSet> {
    let endpoint = |name: &str| {
        if let Some(c) = scope.get(name) {
            Some(ObjSpec::Class(*c))
        } else if let Some(o) = u.object_by_name(name) {
            Some(ObjSpec::Id(o))
        } else {
            u.class_by_name(name).map(ObjSpec::Class)
        }
    };
    let caller = endpoint(&t.caller)?;
    let callee = endpoint(&t.callee)?;
    let method = u.method_by_name(&t.method)?;
    let arg = match &t.arg {
        ArgAst::Absent | ArgAst::Wild => ArgSpec::Auto,
        ArgAst::Name(n) => {
            if let Some(d) = u.data_by_name(n) {
                ArgSpec::Value(d)
            } else if u.class_by_name(n).is_some() {
                ArgSpec::Auto
            } else {
                return None;
            }
        }
    };
    Some(EventPattern { caller, callee, method: Some(method), arg }.to_set(u))
}
