//! Pass 4 — automaton reachability.
//!
//! * `P107` — a specification whose trace set is `{ε}`: legal (Def. 1
//!   only requires nonemptiness and prefix closure) but it permits no
//!   communication at all;
//! * `P104` — a finite alphabet pattern none of whose events occurs in
//!   any accepted trace: the pattern enlarges the alphabet (and thereby
//!   the refinement obligation, Def. 2 condition 3) without ever being
//!   exercised;
//! * `P105` — a declared composition that can reach a quiescent state:
//!   an accepted trace after which no event can ever be appended.  For
//!   a single spec that is often intentional (finite protocols end),
//!   but for a composition it is the paper's deadlock shape (Ex. 4/5):
//!   both sides are individually willing, yet the conjunction stalls.

use crate::automaton::{live_symbols, quiescent_witness};
use crate::context::Ctx;
use crate::diag::{Code, DiagSink, Diagnostic};
use pospec_lang::parser::DevStmt;

pub(crate) fn run(ctx: &Ctx<'_>, sink: &mut DiagSink) {
    epsilon_and_dead_patterns(ctx, sink);
    deadlocked_compositions(ctx, sink);
}

fn epsilon_and_dead_patterns(ctx: &Ctx<'_>, sink: &mut DiagSink) {
    for info in &ctx.specs {
        let sd = &ctx.ast.specs[info.decl];
        let Some(spec) = &info.spec else { continue };
        let Some(dfa) = ctx.dfa(spec) else { continue };
        if dfa.accepts_only_epsilon() {
            sink.push(
                Diagnostic::new(
                    Code::P107,
                    format!(
                        "`{}` accepts only the empty trace: it satisfies Def. 1 but permits no communication",
                        sd.name
                    ),
                )
                .at(sd.span),
            );
            // Every pattern is trivially dead in an ε-only spec; the
            // one P107 explains it better than a P104 per pattern.
            continue;
        }
        let live = live_symbols(&dfa);
        let sigma = dfa.alphabet();
        for (i, set) in info.template_sets.iter().enumerate() {
            let Some(s) = set else { continue };
            // Only finite patterns: an open-environment comprehension
            // (class caller, wildcard argument over an infinite class)
            // legitimately over-approximates what traces exercise.
            if s.is_empty() || s.is_infinite() {
                continue;
            }
            let exercised = sigma.iter().enumerate().any(|(sym, e)| live[sym] && s.contains(e));
            if !exercised {
                sink.push(
                    Diagnostic::new(
                        Code::P104,
                        format!(
                            "pattern {} of `{}`'s alphabet contributes no event to any accepted trace",
                            i + 1,
                            sd.name
                        ),
                    )
                    .at(sd.alphabet[i].span)
                    .note(
                        "dead alphabet widens every refinement obligation over this spec (Def. 2, condition 3) without constraining behaviour",
                    ),
                );
            }
        }
    }
}

fn deadlocked_compositions(ctx: &Ctx<'_>, sink: &mut DiagSink) {
    let u = &ctx.universe;
    for stmt in &ctx.ast.development {
        let DevStmt::Compose { name, left, right, span } = stmt else { continue };
        let Some(spec) = ctx.dev.get(name) else { continue };
        let Some(dfa) = ctx.dfa(spec) else { continue };
        if dfa.accepts_only_epsilon() {
            sink.push(
                Diagnostic::new(
                    Code::P105,
                    format!(
                        "composition `{name}` deadlocks immediately: `{left}` and `{right}` agree on no non-empty trace (Ex. 5)"
                    ),
                )
                .at(*span),
            );
            continue;
        }
        if let Some(word) = quiescent_witness(&dfa) {
            let sigma = dfa.alphabet();
            let trace = word
                .iter()
                .map(|&sym| pospec_alphabet::display_event(u, &sigma[sym]).to_string())
                .collect::<Vec<_>>()
                .join(" ");
            sink.push(
                Diagnostic::new(
                    Code::P105,
                    format!(
                        "composition `{name}` is deadlock-prone: after an accepted trace no further event is possible (Ex. 4)"
                    ),
                )
                .at(*span)
                .note(if trace.is_empty() {
                    "shortest stalling trace: ε".to_string()
                } else {
                    format!("shortest stalling trace: {trace}")
                }),
            );
        }
    }
}
