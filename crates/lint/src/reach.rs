//! Pass 4 — automaton reachability.
//!
//! * `P107` — a specification whose trace set is `{ε}`: legal (Def. 1
//!   only requires nonemptiness and prefix closure) but it permits no
//!   communication at all;
//! * `P104` — a finite alphabet pattern none of whose events occurs in
//!   any accepted trace: the pattern enlarges the alphabet (and thereby
//!   the refinement obligation, Def. 2 condition 3) without ever being
//!   exercised;
//! * `P105` — a declared composition that can reach a quiescent state:
//!   an accepted trace after which no event can ever be appended.  For
//!   a single spec that is often intentional (finite protocols end),
//!   but for a composition it is the paper's deadlock shape (Ex. 4/5):
//!   both sides are individually willing, yet the conjunction stalls.

use crate::automaton::{live_symbols, quiescent_witness};
use crate::context::Ctx;
use crate::diag::{Code, DiagSink, Diagnostic, Fix};
use crate::fix::{deletion_edit, regex_literal_sets};
use pospec_alphabet::EventSet;
use pospec_lang::parser::{DevStmt, TracesAst};
use pospec_lang::Span;

pub(crate) fn run(ctx: &Ctx<'_>, sink: &mut DiagSink) {
    epsilon_and_dead_patterns(ctx, sink);
    deadlocked_compositions(ctx, sink);
}

fn epsilon_and_dead_patterns(ctx: &Ctx<'_>, sink: &mut DiagSink) {
    for info in &ctx.specs {
        let sd = &ctx.ast.specs[info.decl];
        let Some(spec) = &info.spec else { continue };
        let Some(dfa) = ctx.dfa(spec) else { continue };
        if dfa.accepts_only_epsilon() {
            sink.push(
                Diagnostic::new(
                    Code::P107,
                    format!(
                        "`{}` accepts only the empty trace: it satisfies Def. 1 but permits no communication",
                        sd.name
                    ),
                )
                .at(sd.span),
            );
            // Every pattern is trivially dead in an ε-only spec; the
            // one P107 explains it better than a P104 per pattern.
            continue;
        }
        let live = live_symbols(&dfa);
        let sigma = dfa.alphabet();
        for (i, set) in info.template_sets.iter().enumerate() {
            let Some(s) = set else { continue };
            // Only finite patterns: an open-environment comprehension
            // (class caller, wildcard argument over an infinite class)
            // legitimately over-approximates what traces exercise.
            if s.is_empty() || s.is_infinite() {
                continue;
            }
            let exercised = sigma.iter().enumerate().any(|(sym, e)| live[sym] && s.contains(e));
            if !exercised {
                let mut d = Diagnostic::new(
                    Code::P104,
                    format!(
                        "pattern {} of `{}`'s alphabet contributes no event to any accepted trace",
                        i + 1,
                        sd.name
                    ),
                )
                .at(sd.alphabet[i].span)
                .note(
                    "dead alphabet widens every refinement obligation over this spec (Def. 2, condition 3) without constraining behaviour",
                );
                // Removal is safe when no trace-regex literal mentions
                // an event only this pattern contributes: the remaining
                // (still infinite, still admissible) alphabet elaborates
                // the same trace set, so only obligations naming this
                // spec can change — which is the point of the fix.
                let mut others = EventSet::empty(&ctx.universe);
                for (j, other) in info.template_sets.iter().enumerate() {
                    if j != i {
                        if let Some(o) = other {
                            others = others.union(o);
                        }
                    }
                }
                let removed_events = s.difference(&others);
                let literals_safe = match &sd.traces {
                    TracesAst::Any => true,
                    TracesAst::Prs(re) => {
                        regex_literal_sets(&ctx.universe, re).is_some_and(|lits| {
                            lits.iter().all(|l| l.intersect(&removed_events).is_empty())
                        })
                    }
                };
                if literals_safe {
                    d = d.with_fix(Fix::machine(
                        "remove the dead pattern",
                        vec![deletion_edit(ctx.src, sd.alphabet[i].span)],
                    ));
                }
                sink.push(d);
            }
        }
    }
}

/// One composition the product-DFA analysis flags.
pub(crate) struct ProductDeadlock {
    pub name: String,
    pub left: String,
    pub right: String,
    pub span: Span,
    /// `None` for the immediate (Ex. 5, `T = {ε}`) shape; the shortest
    /// stalling trace (rendered) for the quiescent (Ex. 4) shape.
    pub witness: Option<String>,
}

/// The product-DFA deadlock analysis proper, shared by [`run`] and the
/// timing API: build each declared composition's automaton and look for
/// quiescent accepting states.
pub(crate) fn product_deadlocks(ctx: &Ctx<'_>) -> Vec<ProductDeadlock> {
    let u = &ctx.universe;
    let mut out = Vec::new();
    for stmt in &ctx.ast.development {
        let DevStmt::Compose { name, left, right, span } = stmt else { continue };
        let Some(spec) = ctx.dev.get(name) else { continue };
        let Some(dfa) = ctx.dfa(spec) else { continue };
        if dfa.accepts_only_epsilon() {
            out.push(ProductDeadlock {
                name: name.clone(),
                left: left.clone(),
                right: right.clone(),
                span: *span,
                witness: None,
            });
            continue;
        }
        if let Some(word) = quiescent_witness(&dfa) {
            let sigma = dfa.alphabet();
            let trace = word
                .iter()
                .map(|&sym| pospec_alphabet::display_event(u, &sigma[sym]).to_string())
                .collect::<Vec<_>>()
                .join(" ");
            out.push(ProductDeadlock {
                name: name.clone(),
                left: left.clone(),
                right: right.clone(),
                span: *span,
                witness: Some(trace),
            });
        }
    }
    out
}

fn deadlocked_compositions(ctx: &Ctx<'_>, sink: &mut DiagSink) {
    for d in product_deadlocks(ctx) {
        let ProductDeadlock { name, left, right, span, witness } = d;
        match witness {
            None => sink.push(
                Diagnostic::new(
                    Code::P105,
                    format!(
                        "composition `{name}` deadlocks immediately: `{left}` and `{right}` agree on no non-empty trace (Ex. 5)"
                    ),
                )
                .at(span),
            ),
            Some(trace) => sink.push(
                Diagnostic::new(
                    Code::P105,
                    format!(
                        "composition `{name}` is deadlock-prone: after an accepted trace no further event is possible (Ex. 4)"
                    ),
                )
                .at(span)
                .note(if trace.is_empty() {
                    "shortest stalling trace: ε".to_string()
                } else {
                    format!("shortest stalling trace: {trace}")
                }),
            ),
        }
    }
}
