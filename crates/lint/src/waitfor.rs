//! Pass 6 — wait-for-graph deadlock candidates, without automata.
//!
//! `P105` decides deadlock exactly but pays for the product DFA of the
//! composition — the expensive path on thousand-spec documents.  This
//! pass flags the paper's Ex.-5 shape (`T = {ε}` before hiding) from
//! the granule algebra alone, in time linear in the number of alphabet
//! granules:
//!
//! For prefix-closed trace sets, the composition `S₁ ⊗ … ⊗ Sₙ` admits a
//! non-empty joint trace **iff** some event `e` is *enabled*: `e ∈
//! F(Sᵢ)` for every participant `i` with `e ∈ α(Sᵢ)`, where `F(S)` is
//! the set of events `S`'s traces can perform first.  (Proof: the first
//! event of any joint trace projects to a first event of every
//! participant whose alphabet contains it; conversely an enabled `e` is
//! itself a joint trace of length one.)  When no event is enabled,
//! every participant is waiting for some other participant's first
//! event — a cycle in the static wait-for graph — and the composition
//! deadlocks immediately.
//!
//! `F` is computed by a standard FIRST-set recursion over the trace
//! regex; `traces any` and any unresolvable template fall back to the
//! whole alphabet (the participant then blocks nothing), so the pass
//! never reports a false positive: every `P110` is also flagged by
//! `P105`.  The converse fails — quiescence *after* progress (Ex. 4)
//! needs the automaton — which is why both passes stay.

use crate::context::{pattern_set_scoped, Ctx};
use crate::diag::{Code, DiagSink, Diagnostic};
use pospec_alphabet::{EventSet, Universe};
use pospec_lang::parser::{DevStmt, ReAst, TracesAst};
use pospec_lang::Span;
use std::collections::BTreeMap;
use std::sync::Arc;

pub(crate) fn run(ctx: &Ctx<'_>, sink: &mut DiagSink) {
    for c in candidates(ctx) {
        let mut d = Diagnostic::new(
            Code::P110,
            format!(
                "composition `{}` has no enabled initial event: every participant waits for a first event some other participant refuses (wait-for cycle, Ex. 5)",
                c.name
            ),
        )
        .at(c.span);
        for (leaf, first) in c.firsts.iter().take(3) {
            d = d.note(format!(
                "`{leaf}` can only start with: {}",
                crate::compose_pre::sample_events(first, &ctx.universe, 3)
            ));
        }
        sink.push(d);
    }
}

/// One flagged composition.
pub(crate) struct Candidate {
    pub name: String,
    pub span: Span,
    /// Per-leaf FIRST sets, for the diagnostic notes.
    pub firsts: Vec<(String, EventSet)>,
}

/// The wait-for analysis proper, shared by [`run`] and the timing API:
/// every declared composition whose static communication graph admits
/// no enabled initial event.
pub(crate) fn candidates(ctx: &Ctx<'_>) -> Vec<Candidate> {
    let u = &ctx.universe;
    // Flatten compose trees to leaf spec names.
    let mut operands: BTreeMap<&str, (&str, &str)> = BTreeMap::new();
    for stmt in &ctx.ast.development {
        if let DevStmt::Compose { name, left, right, .. } = stmt {
            operands.entry(name.as_str()).or_insert((left.as_str(), right.as_str()));
        }
    }
    let mut out = Vec::new();
    // FIRST sets memoized per spec declaration: a leaf shared by many
    // compositions (every generated star/ring network) computes its
    // recursion once.
    let mut first_memo: BTreeMap<usize, EventSet> = BTreeMap::new();
    'stmts: for stmt in &ctx.ast.development {
        let DevStmt::Compose { name, span, .. } = stmt else { continue };
        // Only compositions that actually composed (Def. 10 holds and
        // every operand elaborated): failures were reported upstream.
        if !ctx.dev.contains_key(name.as_str()) {
            continue;
        }
        let mut leaves: Vec<&str> = Vec::new();
        let mut stack = vec![name.as_str()];
        // Expansion budget: a well-formed compose DAG over k statements
        // has at most k internal nodes per root; the budget only trips
        // on (ill-formed) cyclic chains, which were flagged upstream —
        // bail on those rather than loop.
        let mut budget = 64 + 2 * operands.len();
        while let Some(n) = stack.pop() {
            if budget == 0 {
                continue 'stmts;
            }
            budget -= 1;
            // A spec declaration of the same name shadows nothing here:
            // `compose` results overwrite `ctx.dev`, so treat a name as
            // a leaf only when no compose statement defines it.
            match operands.get(n) {
                Some((l, r)) if n != *l && n != *r => {
                    stack.push(l);
                    stack.push(r);
                }
                _ => leaves.push(n),
            }
        }
        leaves.reverse();
        let mut alphabets: Vec<(&str, EventSet)> = Vec::new();
        let mut firsts: Vec<(String, EventSet)> = Vec::new();
        for leaf in leaves {
            let Some(info) = ctx.spec_by_name(leaf) else {
                continue 'stmts; // a leaf is itself composed or broken
            };
            let Some(spec) = info.spec.as_ref() else {
                continue 'stmts;
            };
            let sd = &ctx.ast.specs[info.decl];
            let alpha = spec.alphabet().clone();
            let first = match first_memo.get(&info.decl) {
                Some(f) => f.clone(),
                None => {
                    let f = match &sd.traces {
                        TracesAst::Any => alpha.clone(),
                        TracesAst::Prs(re) => match first_set(u, re) {
                            // Unresolvable or empty-language regexes
                            // fall back to α: the leaf then never
                            // blocks (conservative).
                            Some(f) if !f.language_empty => f.first,
                            _ => alpha.clone(),
                        },
                    };
                    first_memo.insert(info.decl, f.clone());
                    f
                }
            };
            alphabets.push((leaf, alpha));
            firsts.push((leaf.to_string(), first));
        }
        // e is enabled iff e ∈ ⋃α(i) and e ∉ ⋃(α(i) ∖ F(i)).
        let mut joint = EventSet::empty(u);
        let mut blocked = EventSet::empty(u);
        for ((_, alpha), (_, first)) in alphabets.iter().zip(&firsts) {
            joint = joint.union(alpha);
            blocked = blocked.union(&alpha.difference(first));
        }
        if joint.difference(&blocked).is_empty() {
            out.push(Candidate { name: name.clone(), span: *span, firsts });
        }
    }
    out
}

/// The FIRST-set recursion's result for one regex.
struct First {
    /// Can the language do nothing (contain ε)?
    nullable: bool,
    /// Is the language empty?  (A sequence through an empty factor
    /// denotes ∅; its FIRST set is meaningless, so callers bail out.)
    language_empty: bool,
    /// Events some word of the language starts with.
    first: EventSet,
}

/// Compute the FIRST set of `re`, or `None` when a template fails to
/// resolve (the names pass already reported it).
fn first_set(u: &Arc<Universe>, re: &ReAst) -> Option<First> {
    fn go(
        u: &Arc<Universe>,
        re: &ReAst,
        scope: &mut BTreeMap<String, pospec_trace::ClassId>,
    ) -> Option<First> {
        Some(match re {
            ReAst::Eps => {
                First { nullable: true, language_empty: false, first: EventSet::empty(u) }
            }
            ReAst::Lit(t) => {
                let set = pattern_set_scoped(u, t, scope)?;
                First { nullable: false, language_empty: set.is_empty(), first: set }
            }
            ReAst::Seq(ps) => {
                let mut first = EventSet::empty(u);
                let mut nullable = true;
                let mut language_empty = false;
                for p in ps {
                    let f = go(u, p, scope)?;
                    language_empty |= f.language_empty;
                    if nullable {
                        first = first.union(&f.first);
                    }
                    nullable &= f.nullable;
                }
                if language_empty {
                    First { nullable: false, language_empty: true, first: EventSet::empty(u) }
                } else {
                    First { nullable, language_empty: false, first }
                }
            }
            ReAst::Alt(ps) => {
                let mut first = EventSet::empty(u);
                let mut nullable = false;
                let mut language_empty = true;
                for p in ps {
                    let f = go(u, p, scope)?;
                    if !f.language_empty {
                        language_empty = false;
                        first = first.union(&f.first);
                        nullable |= f.nullable;
                    }
                }
                First { nullable, language_empty, first }
            }
            ReAst::Star(r) | ReAst::Opt(r) => {
                let f = go(u, r, scope)?;
                // R* and R? contain ε even when R denotes ∅.
                First {
                    nullable: true,
                    language_empty: false,
                    first: if f.language_empty { EventSet::empty(u) } else { f.first },
                }
            }
            ReAst::Plus(r) => go(u, r, scope)?,
            ReAst::Group(r) => go(u, r, scope)?,
            ReAst::Bind { body, var, class, .. } => {
                let c = u.class_by_name(class)?;
                let shadowed = scope.insert(var.clone(), c);
                let f = go(u, body, scope);
                match shadowed {
                    Some(old) => {
                        scope.insert(var.clone(), old);
                    }
                    None => {
                        scope.remove(var);
                    }
                }
                f?
            }
        })
    }
    go(u, re, &mut BTreeMap::new())
}
