//! Diagnostic codes, severities, configuration, the shared sink, and
//! the human/JSON renderers.

use pospec_json::{ObjBuilder, Value};
use pospec_lang::{Span, TextEdit};
use std::collections::BTreeMap;
use std::fmt;
use std::str::FromStr;

/// A stable diagnostic code: `P0xx` are errors, `P1xx` warnings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[allow(clippy::upper_case_acronyms)]
pub enum Code {
    /// Lexical or syntactic error.
    P001,
    /// Universe elaboration error (ill-formed `universe { … }` block).
    P002,
    /// Duplicate specification, component or composition name.
    P003,
    /// Unknown object (or variable where none is allowed).
    P004,
    /// Unknown method.
    P005,
    /// Unknown data value or class.
    P006,
    /// Unknown specification or component reference.
    P007,
    /// Self-communication event the trace semantics can never emit.
    P008,
    /// Def. 1 violation: the spec does not elaborate to a partial
    /// object specification (e.g. an alphabet internal to its objects).
    P009,
    /// `compose` operands are not composable (Def. 10).
    P020,
    /// `refine` statically fails Def. 2 conditions 1–2.
    P021,
    /// Alphabet pattern shadowed by the preceding patterns.
    P101,
    /// Universe declaration matched by no specification.
    P102,
    /// Alphabet-expanding refinement whose new events are unreachable.
    P103,
    /// Finite alphabet pattern contributing no accepting trace.
    P104,
    /// Deadlock-prone composition (Ex. 4/5).
    P105,
    /// Vacuously-holding refinement obligation.
    P106,
    /// Specification admitting only the empty trace.
    P107,
    /// Free variable in a trace template (likely a typo).
    P108,
    /// Wait-for-graph deadlock candidate: no first event of the
    /// composition is enabled by every participant sharing it.
    P110,
    /// Improper refinement in the context of a composition (Def. 14).
    P120,
}

/// Every code, in ascending order.
pub const ALL_CODES: &[Code] = &[
    Code::P001,
    Code::P002,
    Code::P003,
    Code::P004,
    Code::P005,
    Code::P006,
    Code::P007,
    Code::P008,
    Code::P009,
    Code::P020,
    Code::P021,
    Code::P101,
    Code::P102,
    Code::P103,
    Code::P104,
    Code::P105,
    Code::P106,
    Code::P107,
    Code::P108,
    Code::P110,
    Code::P120,
];

impl Code {
    /// The stable textual form, e.g. `"P101"`.
    pub fn as_str(self) -> &'static str {
        match self {
            Code::P001 => "P001",
            Code::P002 => "P002",
            Code::P003 => "P003",
            Code::P004 => "P004",
            Code::P005 => "P005",
            Code::P006 => "P006",
            Code::P007 => "P007",
            Code::P008 => "P008",
            Code::P009 => "P009",
            Code::P020 => "P020",
            Code::P021 => "P021",
            Code::P101 => "P101",
            Code::P102 => "P102",
            Code::P103 => "P103",
            Code::P104 => "P104",
            Code::P105 => "P105",
            Code::P106 => "P106",
            Code::P107 => "P107",
            Code::P108 => "P108",
            Code::P110 => "P110",
            Code::P120 => "P120",
        }
    }

    /// The severity a code carries unless reconfigured.
    pub fn default_severity(self) -> Severity {
        match self {
            Code::P001
            | Code::P002
            | Code::P003
            | Code::P004
            | Code::P005
            | Code::P006
            | Code::P007
            | Code::P008
            | Code::P009
            | Code::P020
            | Code::P021 => Severity::Error,
            _ => Severity::Warning,
        }
    }
}

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl FromStr for Code {
    type Err = String;
    fn from_str(s: &str) -> Result<Code, String> {
        ALL_CODES
            .iter()
            .copied()
            .find(|c| c.as_str() == s)
            .ok_or_else(|| format!("unknown lint code `{s}`"))
    }
}

/// How bad a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Advisory; exit code stays 0 unless warnings are denied.
    Warning,
    /// The document is broken; `pospec lint` exits 1.
    Error,
}

impl Severity {
    /// `"error"` / `"warning"`.
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

/// Per-code reconfiguration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Level {
    /// Drop the diagnostic entirely.
    Allow,
    /// Report as a warning.
    Warn,
    /// Report as an error.
    Deny,
}

/// Lint configuration: finitization depth plus per-code allow/warn/deny
/// overrides and a blanket `--deny warnings`.
#[derive(Debug, Clone)]
pub struct LintConfig {
    /// Predicate/finitization depth used when building automata for the
    /// reachability and vacuity passes.
    pub depth: usize,
    /// Promote every warning-level diagnostic to an error.  Explicit
    /// per-code overrides are promoted too — `deny warnings` means what
    /// it says.
    pub deny_warnings: bool,
    overrides: BTreeMap<Code, Level>,
}

impl Default for LintConfig {
    fn default() -> Self {
        LintConfig { depth: 6, deny_warnings: false, overrides: BTreeMap::new() }
    }
}

impl LintConfig {
    /// The default configuration.
    pub fn new() -> LintConfig {
        LintConfig::default()
    }

    /// Override one code's level.
    pub fn set(&mut self, code: Code, level: Level) {
        self.overrides.insert(code, level);
    }

    /// The severity a diagnostic of `code` is reported at, or `None`
    /// when it is allowed (dropped).
    pub fn effective(&self, code: Code) -> Option<Severity> {
        let level = self.overrides.get(&code).copied().unwrap_or(match code.default_severity() {
            Severity::Error => Level::Deny,
            Severity::Warning => Level::Warn,
        });
        match level {
            Level::Allow => None,
            Level::Deny => Some(Severity::Error),
            Level::Warn => {
                Some(if self.deny_warnings { Severity::Error } else { Severity::Warning })
            }
        }
    }
}

/// How confident the fix engine is in a suggested rewrite.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Applicability {
    /// Provably behaviour-preserving: applying the edits keeps the
    /// document parseable and elaborable, and every specification not
    /// named in the diagnostic keeps its exact semantics (alphabets,
    /// trace sets, refinement verdicts).  `--fix` applies these.
    MachineApplicable,
    /// A plausible rewrite that may change semantics (e.g. widening an
    /// alphabet can break Def.-1 admissibility).  Offered as an LSP
    /// code action but never applied by `--fix`.
    MaybeIncorrect,
}

impl Applicability {
    /// The stable textual form used in JSON output.
    pub fn as_str(self) -> &'static str {
        match self {
            Applicability::MachineApplicable => "machine-applicable",
            Applicability::MaybeIncorrect => "maybe-incorrect",
        }
    }
}

/// A suggested rewrite attached to a diagnostic: a batch of byte-offset
/// edits on the original source plus a confidence level.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fix {
    /// Short imperative description, e.g. "remove unused declaration".
    pub title: String,
    /// Confidence level; only [`Applicability::MachineApplicable`]
    /// fixes are applied by `pospec lint --fix`.
    pub applicability: Applicability,
    /// The edits, non-overlapping among themselves, addressed against
    /// the source the diagnostic was produced from.
    pub edits: Vec<TextEdit>,
}

impl Fix {
    /// A machine-applicable fix.  Edits are normalized on construction
    /// (sorted, duplicate-free, overlapping deletions merged) so every
    /// consumer can apply them as-is.
    pub fn machine(title: impl Into<String>, edits: Vec<TextEdit>) -> Fix {
        Fix {
            title: title.into(),
            applicability: Applicability::MachineApplicable,
            edits: pospec_lang::coalesce_deletions(edits),
        }
    }

    /// A maybe-incorrect suggestion, normalized like [`Fix::machine`].
    pub fn suggestion(title: impl Into<String>, edits: Vec<TextEdit>) -> Fix {
        Fix {
            title: title.into(),
            applicability: Applicability::MaybeIncorrect,
            edits: pospec_lang::coalesce_deletions(edits),
        }
    }
}

/// A secondary message attached to a diagnostic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Note {
    /// Optional source position the note points at.
    pub span: Option<Span>,
    /// The note text.
    pub message: String,
}

/// One reported problem: code, severity, primary message and span,
/// plus any number of notes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// The stable code.
    pub code: Code,
    /// Severity after configuration is applied.
    pub severity: Severity,
    /// The primary message.
    pub message: String,
    /// The primary source position, when one exists.
    pub span: Option<Span>,
    /// Secondary notes.
    pub notes: Vec<Note>,
    /// A suggested rewrite, when a provably safe (or at least
    /// plausible) one exists.
    pub fix: Option<Fix>,
}

impl Diagnostic {
    /// A diagnostic at its code's default severity (the sink applies
    /// the configuration).
    pub fn new(code: Code, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            code,
            severity: code.default_severity(),
            message: message.into(),
            span: None,
            notes: Vec::new(),
            fix: None,
        }
    }

    /// Attach the primary span.
    pub fn at(mut self, span: Span) -> Diagnostic {
        self.span = Some(span);
        self
    }

    /// Attach a span-less note.
    pub fn note(mut self, message: impl Into<String>) -> Diagnostic {
        self.notes.push(Note { span: None, message: message.into() });
        self
    }

    /// Attach a note pointing at a source position.
    pub fn note_at(mut self, span: Span, message: impl Into<String>) -> Diagnostic {
        self.notes.push(Note { span: Some(span), message: message.into() });
        self
    }

    /// Attach a suggested rewrite.
    pub fn with_fix(mut self, fix: Fix) -> Diagnostic {
        self.fix = Some(fix);
        self
    }
}

/// The sink every pass reports into.  Applies the [`LintConfig`] at
/// push time: allowed codes are dropped, severities are rewritten.
#[derive(Debug)]
pub struct DiagSink {
    config: LintConfig,
    diags: Vec<Diagnostic>,
}

impl DiagSink {
    /// A sink applying `config`.
    pub fn new(config: LintConfig) -> DiagSink {
        DiagSink { config, diags: Vec::new() }
    }

    /// Report one diagnostic (dropped when its code is allowed).
    pub fn push(&mut self, mut d: Diagnostic) {
        match self.config.effective(d.code) {
            None => {}
            Some(sev) => {
                d.severity = sev;
                self.diags.push(d);
            }
        }
    }

    /// Sort by source position and wrap up into a report for `file`.
    pub fn finish(mut self, file: &str) -> LintReport {
        self.diags.sort_by_key(|d| {
            (
                d.span.map(|s| (s.offset, s.line, s.col)).unwrap_or((u32::MAX, u32::MAX, u32::MAX)),
                d.code,
            )
        });
        LintReport { file: file.to_string(), diagnostics: self.diags }
    }
}

/// Everything the linter found in one document.
#[derive(Debug, Clone)]
pub struct LintReport {
    /// The file (or pseudo-name) that was linted.
    pub file: String,
    /// Diagnostics in source order.
    pub diagnostics: Vec<Diagnostic>,
}

impl LintReport {
    /// Number of error-severity diagnostics.
    pub fn errors(&self) -> usize {
        self.diagnostics.iter().filter(|d| d.severity == Severity::Error).count()
    }

    /// Number of warning-severity diagnostics.
    pub fn warnings(&self) -> usize {
        self.diagnostics.iter().filter(|d| d.severity == Severity::Warning).count()
    }

    /// Any errors?
    pub fn has_errors(&self) -> bool {
        self.errors() > 0
    }

    /// Nothing at all?
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Render every diagnostic in the rustc-like human format, with
    /// caret underlines cut from `src`.
    pub fn render_human(&self, src: &str) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&format!("{}[{}]: {}\n", d.severity.as_str(), d.code, d.message));
            if let Some(span) = d.span {
                out.push_str(&format!("  --> {}:{}:{}\n", self.file, span.line, span.col));
                if let Some((text, pad, width)) = span.underline(src) {
                    let gutter = span.line.to_string();
                    out.push_str(&format!(" {gutter} | {text}\n"));
                    out.push_str(&format!(
                        " {} | {}{}\n",
                        " ".repeat(gutter.len()),
                        " ".repeat(pad),
                        "^".repeat(width)
                    ));
                }
            } else {
                out.push_str(&format!("  --> {}\n", self.file));
            }
            for n in &d.notes {
                match n.span {
                    Some(s) => out.push_str(&format!(
                        "  = note: {} (at {}:{}:{})\n",
                        n.message, self.file, s.line, s.col
                    )),
                    None => out.push_str(&format!("  = note: {}\n", n.message)),
                }
            }
        }
        out
    }

    /// The structured form shared verbatim by `pospec lint --json` and
    /// the serve `lint` request.
    pub fn to_json(&self) -> Value {
        let span_json = |s: Span| {
            ObjBuilder::new()
                .field("line", s.line as u64)
                .field("col", s.col as u64)
                .field("offset", s.offset as u64)
                .field("len", s.len as u64)
                .build()
        };
        let diags: Vec<Value> = self
            .diagnostics
            .iter()
            .map(|d| {
                let notes: Vec<Value> = d
                    .notes
                    .iter()
                    .map(|n| {
                        ObjBuilder::new()
                            .field("message", n.message.as_str())
                            .field("span", n.span.map(span_json).unwrap_or(Value::Null))
                            .build()
                    })
                    .collect();
                let fix = d
                    .fix
                    .as_ref()
                    .map(|f| {
                        let edits: Vec<Value> = f
                            .edits
                            .iter()
                            .map(|e| {
                                ObjBuilder::new()
                                    .field("start", e.start as u64)
                                    .field("end", e.end as u64)
                                    .field("replacement", e.replacement.as_str())
                                    .build()
                            })
                            .collect();
                        ObjBuilder::new()
                            .field("title", f.title.as_str())
                            .field("applicability", f.applicability.as_str())
                            .field("edits", Value::Arr(edits))
                            .build()
                    })
                    .unwrap_or(Value::Null);
                ObjBuilder::new()
                    .field("code", d.code.as_str())
                    .field("severity", d.severity.as_str())
                    .field("message", d.message.as_str())
                    .field("span", d.span.map(span_json).unwrap_or(Value::Null))
                    .field("notes", Value::Arr(notes))
                    .field("fix", fix)
                    .build()
            })
            .collect();
        ObjBuilder::new()
            .field("file", self.file.as_str())
            .field("clean", self.is_clean())
            .field("errors", self.errors() as u64)
            .field("warnings", self.warnings() as u64)
            .field("diagnostics", Value::Arr(diags))
            .build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_round_trip_and_split_by_severity() {
        for &c in ALL_CODES {
            assert_eq!(c.as_str().parse::<Code>().unwrap(), c);
            let is_error = c.as_str().starts_with("P0");
            assert_eq!(c.default_severity() == Severity::Error, is_error, "{c}");
        }
        assert!("P999".parse::<Code>().is_err());
        assert!("p101".parse::<Code>().is_err());
    }

    #[test]
    fn config_allow_warn_deny_and_deny_warnings() {
        let mut cfg = LintConfig::new();
        assert_eq!(cfg.effective(Code::P101), Some(Severity::Warning));
        assert_eq!(cfg.effective(Code::P001), Some(Severity::Error));
        cfg.set(Code::P101, Level::Allow);
        cfg.set(Code::P102, Level::Deny);
        cfg.set(Code::P001, Level::Warn);
        assert_eq!(cfg.effective(Code::P101), None);
        assert_eq!(cfg.effective(Code::P102), Some(Severity::Error));
        assert_eq!(cfg.effective(Code::P001), Some(Severity::Warning));
        cfg.deny_warnings = true;
        assert_eq!(cfg.effective(Code::P001), Some(Severity::Error));
        assert_eq!(cfg.effective(Code::P103), Some(Severity::Error));
        assert_eq!(cfg.effective(Code::P101), None, "allow survives deny_warnings");
    }

    #[test]
    fn sink_applies_config_and_sorts_by_position() {
        let mut cfg = LintConfig::new();
        cfg.set(Code::P104, Level::Allow);
        let mut sink = DiagSink::new(cfg);
        let late = Span { line: 3, col: 1, offset: 40, len: 2 };
        let early = Span { line: 1, col: 5, offset: 4, len: 3 };
        sink.push(Diagnostic::new(Code::P101, "later").at(late));
        sink.push(Diagnostic::new(Code::P104, "dropped").at(early));
        sink.push(Diagnostic::new(Code::P004, "earlier").at(early).note("why"));
        sink.push(Diagnostic::new(Code::P102, "file-level"));
        let report = sink.finish("x.pos");
        let codes: Vec<&str> = report.diagnostics.iter().map(|d| d.code.as_str()).collect();
        assert_eq!(codes, vec!["P004", "P101", "P102"]);
        assert_eq!((report.errors(), report.warnings()), (1, 2));
        assert!(report.has_errors() && !report.is_clean());
    }

    #[test]
    fn json_shape_is_stable() {
        let mut sink = DiagSink::new(LintConfig::new());
        sink.push(
            Diagnostic::new(Code::P101, "shadowed")
                .at(Span { line: 2, col: 3, offset: 10, len: 5 })
                .note("covered earlier"),
        );
        let j = sink.finish("a.pos").to_json();
        assert_eq!(j.get("file").and_then(|v| v.as_str()), Some("a.pos"));
        assert_eq!(j.get("clean").and_then(|v| v.as_bool()), Some(false));
        assert_eq!(j.get("warnings").and_then(|v| v.as_u64()), Some(1));
        let d = &j.get("diagnostics").and_then(|v| v.as_arr()).unwrap()[0];
        assert_eq!(d.get("code").and_then(|v| v.as_str()), Some("P101"));
        assert_eq!(d.get("severity").and_then(|v| v.as_str()), Some("warning"));
        let span = d.get("span").unwrap();
        assert_eq!(span.get("offset").and_then(|v| v.as_u64()), Some(10));
    }

    #[test]
    fn fixes_ride_along_in_json() {
        let mut sink = DiagSink::new(LintConfig::new());
        sink.push(
            Diagnostic::new(Code::P102, "unused declaration")
                .with_fix(Fix::machine("remove declaration", vec![TextEdit::delete(4, 13)])),
        );
        let j = sink.finish("a.pos").to_json();
        let d = &j.get("diagnostics").and_then(|v| v.as_arr()).unwrap()[0];
        let fix = d.get("fix").expect("fix present");
        assert_eq!(fix.get("applicability").and_then(|v| v.as_str()), Some("machine-applicable"));
        let e = &fix.get("edits").and_then(|v| v.as_arr()).unwrap()[0];
        assert_eq!(e.get("start").and_then(|v| v.as_u64()), Some(4));
        assert_eq!(e.get("end").and_then(|v| v.as_u64()), Some(13));
        assert_eq!(e.get("replacement").and_then(|v| v.as_str()), Some(""));
        // Diagnostics without a fix carry an explicit null.
        let mut sink = DiagSink::new(LintConfig::new());
        sink.push(Diagnostic::new(Code::P105, "deadlock"));
        let j = sink.finish("b.pos").to_json();
        let d = &j.get("diagnostics").and_then(|v| v.as_arr()).unwrap()[0];
        assert!(matches!(d.get("fix"), Some(Value::Null)));
    }

    #[test]
    fn human_rendering_underlines_the_snippet() {
        let src = "spec S {\n  bad here\n}\n";
        let mut sink = DiagSink::new(LintConfig::new());
        sink.push(Diagnostic::new(Code::P004, "unknown object `here`").at(Span {
            line: 2,
            col: 7,
            offset: 15,
            len: 4,
        }));
        let out = sink.finish("t.pos").render_human(src);
        assert!(out.contains("error[P004]: unknown object `here`"), "{out}");
        assert!(out.contains("  --> t.pos:2:7"), "{out}");
        assert!(out.contains(" 2 |   bad here"), "{out}");
        assert!(out.contains("^^^^"), "{out}");
    }
}
