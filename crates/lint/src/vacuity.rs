//! Pass 5 — vacuous refinement obligations.
//!
//! `P106`: a declared `refine` whose condition 3 (Def. 2) holds for a
//! degenerate reason — the concrete side's trace set is `{ε}` (or the
//! projection of every concrete trace is empty), so the inclusion
//! `T' / α ⊆ T` is witnessed only by the empty trace.  The refinement
//! "verifies" but establishes nothing about behaviour.

use crate::context::Ctx;
use crate::diag::{Code, DiagSink, Diagnostic};
use pospec_lang::parser::DevStmt;

pub(crate) fn run(ctx: &Ctx<'_>, sink: &mut DiagSink) {
    for stmt in &ctx.ast.development {
        let DevStmt::Refine { concrete, abstract_, span } = stmt else { continue };
        let (Some(c), Some(a)) = (ctx.dev.get(concrete), ctx.dev.get(abstract_)) else {
            continue;
        };
        let Some(cdfa) = ctx.dfa(c) else { continue };
        if cdfa.accepts_only_epsilon() {
            sink.push(
                Diagnostic::new(
                    Code::P106,
                    format!(
                        "the obligation `{concrete}` ⊒ `{abstract_}` holds vacuously: `{concrete}` accepts only the empty trace, so condition 3 of Def. 2 is witnessed by ε alone"
                    ),
                )
                .at(*span),
            );
            continue;
        }
        // Projection vacuity: no event of the abstract alphabet is live
        // in the concrete automaton, so every projected trace is ε.
        let live = crate::automaton::live_symbols(&cdfa);
        let sigma = cdfa.alphabet();
        let any_abstract_live =
            sigma.iter().enumerate().any(|(sym, e)| live[sym] && a.alphabet().contains(e));
        if !any_abstract_live {
            sink.push(
                Diagnostic::new(
                    Code::P106,
                    format!(
                        "the obligation `{concrete}` ⊒ `{abstract_}` holds vacuously: no accepted trace of `{concrete}` contains an event of α(`{abstract_}`), so the projection in condition 3 is always ε"
                    ),
                )
                .at(*span),
            );
        }
    }
}
