//! Pass 2 — alphabet analysis on the exact granule algebra.
//!
//! * `P101` — an alphabet pattern whose event set is already covered by
//!   the union of the preceding patterns (decided exactly; shadowing is
//!   harmless to the semantics but almost always a copy-paste slip);
//! * `P102` — a universe declaration (object / method / value / class)
//!   matched by no specification at all;
//! * `P103` — a refinement that expands the alphabet (which Def. 2
//!   deliberately permits) but whose *new* events label no reachable
//!   transition of the refined automaton — the expansion is dead
//!   weight, and condition 3 over it is trivially satisfied.

use crate::automaton::live_symbols;
use crate::context::Ctx;
use crate::diag::{Code, DiagSink, Diagnostic, Fix};
use crate::fix::{deletion_edit, regex_literal_sets};
use pospec_alphabet::EventSet;
use pospec_lang::parser::{ArgAst, DevStmt, ReAst, TemplateAst, TracesAst, UDecl, WitnessTarget};
use pospec_lang::TextEdit;
use std::collections::BTreeSet;

pub(crate) fn run(ctx: &Ctx<'_>, sink: &mut DiagSink) {
    shadowed_patterns(ctx, sink);
    unused_declarations(ctx, sink);
    dead_expansions(ctx, sink);
}

fn shadowed_patterns(ctx: &Ctx<'_>, sink: &mut DiagSink) {
    let u = &ctx.universe;
    for info in &ctx.specs {
        let sd = &ctx.ast.specs[info.decl];
        let mut acc = EventSet::empty(u);
        for (i, set) in info.template_sets.iter().enumerate() {
            let Some(s) = set else { continue };
            if !s.is_empty() && s.is_subset(&acc) {
                // Point at the shortest prefix that already covers it.
                let mut prefix = EventSet::empty(u);
                let mut covered_by = 0;
                for (j, earlier) in info.template_sets[..i].iter().enumerate() {
                    if let Some(e) = earlier {
                        prefix = prefix.union(e);
                    }
                    if s.is_subset(&prefix) {
                        covered_by = j;
                        break;
                    }
                }
                // Removal is unconditionally safe: the pattern's events
                // are a subset of the preceding patterns' union, so the
                // elaborated alphabet — and with it every trace set and
                // verdict — is unchanged.
                sink.push(
                    Diagnostic::new(
                        Code::P101,
                        format!(
                            "pattern {} of `{}`'s alphabet is shadowed: every event it denotes is already covered by the preceding patterns",
                            i + 1,
                            sd.name
                        ),
                    )
                    .at(sd.alphabet[i].span)
                    .note_at(
                        sd.alphabet[covered_by].span,
                        "fully covered by the patterns up to this one",
                    )
                    .with_fix(Fix::machine(
                        "remove the shadowed pattern",
                        vec![deletion_edit(ctx.src, sd.alphabet[i].span)],
                    )),
                );
            }
            acc = acc.union(s);
        }
    }
}

/// Syntactic usage collection: every identifier that appears in an
/// object list, template position, binder, or component membership.
fn used_names(ctx: &Ctx<'_>) -> BTreeSet<String> {
    let mut used = BTreeSet::new();
    let mut template = |t: &TemplateAst, used: &mut BTreeSet<String>| {
        used.insert(t.caller.clone());
        used.insert(t.callee.clone());
        used.insert(t.method.clone());
        if let ArgAst::Name(n) = &t.arg {
            used.insert(n.clone());
        }
    };
    fn walk(
        re: &ReAst,
        used: &mut BTreeSet<String>,
        template: &mut impl FnMut(&TemplateAst, &mut BTreeSet<String>),
    ) {
        match re {
            ReAst::Eps => {}
            ReAst::Lit(t) => template(t, used),
            ReAst::Seq(ps) | ReAst::Alt(ps) => {
                for p in ps {
                    walk(p, used, template);
                }
            }
            ReAst::Star(r) | ReAst::Plus(r) | ReAst::Opt(r) | ReAst::Group(r) => {
                walk(r, used, template)
            }
            ReAst::Bind { body, class, .. } => {
                used.insert(class.clone());
                walk(body, used, template);
            }
        }
    }
    for sd in &ctx.ast.specs {
        for (name, _) in &sd.objects {
            used.insert(name.clone());
        }
        for t in &sd.alphabet {
            template(t, &mut used);
        }
        if let pospec_lang::parser::TracesAst::Prs(re) = &sd.traces {
            walk(re, &mut used, &mut template);
        }
    }
    for cd in &ctx.ast.components {
        for (obj, _) in &cd.members {
            used.insert(obj.clone());
        }
    }
    used
}

fn unused_declarations(ctx: &Ctx<'_>, sink: &mut DiagSink) {
    let u = &ctx.universe;
    let named = used_names(ctx);
    // The union of every elaborated spec's alphabet decides *semantic*
    // usage: an object reached through a class pattern counts as used
    // even when its own name never appears.  Collect the granules in
    // one pass (a fold of `EventSet::union` clones the accumulated
    // granule set per spec — quadratic on generated thousand-spec
    // documents) and precompute the named endpoints once instead of
    // scanning the union per object declaration.
    let mut granules = BTreeSet::new();
    for info in &ctx.specs {
        if let Some(s) = &info.spec {
            granules.extend(s.alphabet().granules().copied());
        }
    }
    let union_alpha = EventSet::from_granules(u, granules);
    let endpoint_objects = union_alpha.named_endpoints();
    let used_method = |name: &str| named.contains(name);
    let used_object = |name: &str| {
        named.contains(name)
            || u.object_by_name(name).is_some_and(|o| endpoint_objects.contains(&o))
    };
    // A method's signature keeps its data class alive; a used method
    // with a parameterised signature keeps the class's values alive
    // (they are matched by `M(_)` without being named).
    let mut sig_classes: BTreeSet<&str> = BTreeSet::new();
    for d in &ctx.ast.universe {
        if let UDecl::Method { name, param: Some(c) } = d {
            if used_method(name) {
                sig_classes.insert(c.as_str());
            }
        }
    }
    let used_value = |name: &str, class: &str| named.contains(name) || sig_classes.contains(class);
    let used_class = |name: &str| {
        named.contains(name)
            || sig_classes.contains(name)
            || ctx.ast.universe.iter().any(|d| match d {
                UDecl::Object { name: o, class: Some(c) } => c == name && used_object(o),
                UDecl::Value { name: v, class: c } => c == name && used_value(v, c),
                _ => false,
            })
    };
    for (idx, d) in ctx.ast.universe.iter().enumerate() {
        let (kind, name, unused) = match d {
            UDecl::Class(n) | UDecl::Data(n) => ("class", n, !used_class(n)),
            UDecl::Object { name, .. } => ("object", name, !used_object(name)),
            UDecl::Method { name, .. } => ("method", name, !used_method(name)),
            UDecl::Value { name, class } => ("value", name, !used_value(name, class)),
            UDecl::Witnesses { .. } => continue,
        };
        if unused {
            // Removal preserves every verdict: a flagged declaration is
            // semantically absent from every elaborated alphabet (even
            // class patterns would have marked it used through the
            // granule expansion), so re-elaboration yields extensionally
            // identical specifications.  A class takes its (necessarily
            // also unused) members and `witnesses` lines with it — an
            // orphaned member or witness would break the universe.
            let mut edits = vec![deletion_edit(ctx.src, ctx.ast.universe_spans[idx])];
            if matches!(d, UDecl::Class(_) | UDecl::Data(_)) {
                for (j, other) in ctx.ast.universe.iter().enumerate() {
                    let member = match other {
                        UDecl::Object { class: Some(c), .. } => c == name,
                        UDecl::Value { class, .. } => class == name,
                        UDecl::Witnesses { target: WitnessTarget::Class(c), .. } => c == name,
                        _ => false,
                    };
                    if member {
                        edits.push(deletion_edit(ctx.src, ctx.ast.universe_spans[j]));
                    }
                }
            }
            sink.push(
                Diagnostic::new(
                    Code::P102,
                    format!(
                        "{kind} `{name}` is declared in the universe but matched by no specification"
                    ),
                )
                .at(ctx.ast.universe_spans[idx])
                .with_fix(Fix::machine(format!("remove unused {kind} `{name}`"), edits)),
            );
        }
    }
}

fn dead_expansions(ctx: &Ctx<'_>, sink: &mut DiagSink) {
    for stmt in &ctx.ast.development {
        let DevStmt::Refine { concrete, abstract_, span } = stmt else { continue };
        let (Some(c), Some(a)) = (ctx.dev.get(concrete), ctx.dev.get(abstract_)) else {
            continue;
        };
        let new = c.alphabet().difference(a.alphabet());
        if new.is_empty() {
            continue;
        }
        let Some(dfa) = ctx.dfa(c) else { continue };
        let live = live_symbols(&dfa);
        let sigma = dfa.alphabet();
        let any_new_live = sigma.iter().enumerate().any(|(sym, e)| live[sym] && new.contains(e));
        if !any_new_live {
            let mut d = Diagnostic::new(
                Code::P103,
                format!(
                    "`{concrete}` expands `{abstract_}`'s alphabet, but none of the new events occurs in any accepted trace of `{concrete}` — the expansion is unreachable"
                ),
            )
            .at(*span)
            .note(format!(
                "new events α(`{concrete}`) ∖ α(`{abstract_}`): {}",
                crate::compose_pre::sample_events(&new, &ctx.universe, 3)
            ));
            if let Some(edits) = expansion_removal_edits(ctx, concrete, a, &new) {
                d = d.with_fix(Fix::machine("remove the dead alphabet expansion", edits));
            }
            sink.push(d);
        }
    }
}

/// Edits deleting exactly the alphabet patterns of `concrete` that
/// carry the dead expansion `new`, or `None` when no provably exact
/// removal exists.  The fix is attached only when
///
/// * `concrete` is a literal `spec` block (not a `compose` result),
/// * α(a) ⊆ α(c) — so the shrunken alphabet is exactly α(a), which is
///   admissible (a subset of an admissible set is) and infinite,
/// * the removed patterns partition off `new` exactly: each removed
///   pattern's events lie inside `new`, their union covers `new`, and
///   no surviving pattern overlaps `new` (otherwise the re-lint would
///   flag the residue forever and `--fix` would not reach a fixpoint),
/// * no trace-regex literal of `concrete` mentions a removed event —
///   the trace set elaborates identically over the smaller alphabet.
fn expansion_removal_edits(
    ctx: &Ctx<'_>,
    concrete: &str,
    abstract_spec: &pospec_core::Specification,
    new: &EventSet,
) -> Option<Vec<TextEdit>> {
    if ctx
        .ast
        .development
        .iter()
        .any(|s| matches!(s, DevStmt::Compose { name, .. } if name == concrete))
    {
        return None;
    }
    let info = ctx.spec_by_name(concrete)?;
    let sd = &ctx.ast.specs[info.decl];
    let c = info.spec.as_ref()?;
    if !abstract_spec.alphabet().is_subset(c.alphabet()) {
        return None;
    }
    let mut removed = Vec::new();
    let mut covered = EventSet::empty(&ctx.universe);
    for (i, set) in info.template_sets.iter().enumerate() {
        let s = set.as_ref()?;
        if s.is_subset(new) {
            removed.push(i);
            covered = covered.union(s);
        } else if !s.intersect(new).is_empty() {
            return None; // a surviving pattern straddles the expansion
        }
    }
    if removed.is_empty() || !new.is_subset(&covered) {
        return None;
    }
    if let TracesAst::Prs(re) = &sd.traces {
        let lits = regex_literal_sets(&ctx.universe, re)?;
        if lits.iter().any(|l| !l.intersect(new).is_empty()) {
            return None;
        }
    }
    Some(removed.iter().map(|&i| deletion_edit(ctx.src, sd.alphabet[i].span)).collect())
}
