//! Small reachability helpers over [`ConcreteDfa`].
//!
//! All surface trace sets are prefix closed (Def. 1), so a word is
//! accepted iff every state on its path is accepting: reachability
//! *through accepting states* is exactly reachability along accepted
//! prefixes, and a symbol is "live" iff some accepted word uses it.

use pospec_regex::ConcreteDfa;

/// Per-symbol liveness: `live[sym]` iff some accepted word contains
/// the symbol (i.e. an accepting→accepting transition on it is
/// reachable from the start through accepting states).
pub(crate) fn live_symbols(dfa: &ConcreteDfa) -> Vec<bool> {
    let nsym = dfa.alphabet().len();
    let mut live = vec![false; nsym];
    for s in accepting_reachable(dfa) {
        for (sym, flag) in live.iter_mut().enumerate() {
            if let Some(t) = dfa.successor(s, sym) {
                if dfa.is_accepting(t) {
                    *flag = true;
                }
            }
        }
    }
    live
}

/// A shortest accepted word leading to a *quiescent* state — a
/// reachable accepting state with no accepting successor, i.e. a point
/// where the system can never again communicate (Ex. 4/5).  `None`
/// when every reachable accepting state can continue.
pub(crate) fn quiescent_witness(dfa: &ConcreteDfa) -> Option<Vec<usize>> {
    let start = dfa.start_state();
    if !dfa.is_accepting(start) {
        return None;
    }
    let nsym = dfa.alphabet().len();
    let mut parent: Vec<Option<(usize, usize)>> = vec![None; dfa.state_count()];
    let mut seen = vec![false; dfa.state_count()];
    let mut queue = std::collections::VecDeque::from([start]);
    seen[start] = true;
    while let Some(s) = queue.pop_front() {
        let mut can_continue = false;
        for sym in 0..nsym {
            if let Some(t) = dfa.successor(s, sym) {
                if dfa.is_accepting(t) {
                    can_continue = true;
                    if !seen[t] {
                        seen[t] = true;
                        parent[t] = Some((s, sym));
                        queue.push_back(t);
                    }
                }
            }
        }
        if !can_continue {
            let mut word = Vec::new();
            let mut at = s;
            while let Some((prev, sym)) = parent[at] {
                word.push(sym);
                at = prev;
            }
            word.reverse();
            return Some(word);
        }
    }
    None
}

/// The accepting states reachable from the start through accepting
/// states (empty when the start itself rejects, i.e. empty language).
fn accepting_reachable(dfa: &ConcreteDfa) -> Vec<usize> {
    let start = dfa.start_state();
    if !dfa.is_accepting(start) {
        return Vec::new();
    }
    let nsym = dfa.alphabet().len();
    let mut seen = vec![false; dfa.state_count()];
    let mut stack = vec![start];
    let mut out = Vec::new();
    seen[start] = true;
    while let Some(s) = stack.pop() {
        out.push(s);
        for sym in 0..nsym {
            if let Some(t) = dfa.successor(s, sym) {
                if dfa.is_accepting(t) && !seen[t] {
                    seen[t] = true;
                    stack.push(t);
                }
            }
        }
    }
    out
}
