//! Pass 3 — composition and refinement preconditions, decided exactly
//! on the granule algebra (no automata needed).
//!
//! * `P020` — a `compose` clause whose operands violate Def. 10, with
//!   the offending events and objects named (the checker's late
//!   `ComposeError` reports only an opaque overlap string);
//! * `P021` — a `refine` clause that already fails the static
//!   conditions 1–2 of Def. 2 (object and alphabet inclusion);
//! * `P120` — a refinement that is not *proper* (Def. 14) with respect
//!   to a declared composition context: its new objects communicate
//!   with the context, so the context's hiding would erase events the
//!   original composition kept observable.
//!
//! Successfully composed results are inserted into `ctx.dev` for the
//! reachability and vacuity passes.

use crate::context::Ctx;
use crate::diag::{Code, DiagSink, Diagnostic, Fix};
use crate::fix::granule_template_source;
use pospec_alphabet::{internal_of_set, EventSet, Universe};
use pospec_core::{
    compose, is_proper_refinement, properness_offending_events, refinement_conditions,
};
use pospec_lang::parser::DevStmt;
use pospec_lang::TextEdit;

/// Render at most `max` granules of `s`, with an ellipsis beyond.
pub(crate) fn sample_events(s: &EventSet, u: &Universe, max: usize) -> String {
    let mut parts: Vec<String> = s.granules().take(max).map(|g| g.display(u)).collect();
    if s.granule_count() > max {
        parts.push("…".to_string());
    }
    parts.join(", ")
}

fn object_names(u: &Universe, objs: impl IntoIterator<Item = pospec_trace::ObjectId>) -> String {
    objs.into_iter().map(|o| format!("`{}`", u.object_name(o))).collect::<Vec<_>>().join(", ")
}

pub(crate) fn run(ctx: &mut Ctx<'_>, sink: &mut DiagSink) {
    let ast = ctx.ast;
    let u = ctx.universe.clone();
    for stmt in &ast.development {
        match stmt {
            DevStmt::Compose { name, left, right, span } => {
                let (Some(l), Some(r)) = (ctx.dev.get(left).cloned(), ctx.dev.get(right).cloned())
                else {
                    continue; // operand missing: already reported upstream
                };
                match compose(&l, &r) {
                    Ok(c) => {
                        ctx.dev.insert(name.clone(), c);
                    }
                    Err(_) => {
                        // Recompute the two Def.-10 overlaps so the
                        // diagnostic can name exactly what collides.
                        let overlap_a = l.alphabet().intersect(&internal_of_set(&u, r.objects()));
                        let overlap_b = internal_of_set(&u, l.objects()).intersect(r.alphabet());
                        let mut d = Diagnostic::new(
                            Code::P020,
                            format!(
                                "`{left}` and `{right}` are not composable (Def. 10): each side's alphabet must avoid events internal to the other's objects"
                            ),
                        )
                        .at(*span);
                        if !overlap_a.is_empty() {
                            let objs: Vec<_> = r
                                .objects()
                                .iter()
                                .copied()
                                .filter(|o| overlap_a.mentions_object(*o))
                                .collect();
                            d = d.note(format!(
                                "α(`{left}`) contains events internal to `{right}`'s objects {}: {}",
                                object_names(&u, objs),
                                sample_events(&overlap_a, &u, 3),
                            ));
                        }
                        if !overlap_b.is_empty() {
                            let objs: Vec<_> = l
                                .objects()
                                .iter()
                                .copied()
                                .filter(|o| overlap_b.mentions_object(*o))
                                .collect();
                            d = d.note(format!(
                                "α(`{right}`) contains events internal to `{left}`'s objects {}: {}",
                                object_names(&u, objs),
                                sample_events(&overlap_b, &u, 3),
                            ));
                        }
                        sink.push(d);
                    }
                }
            }
            DevStmt::Refine { concrete, abstract_, span } => {
                let (Some(c), Some(a)) = (ctx.dev.get(concrete), ctx.dev.get(abstract_)) else {
                    continue;
                };
                let rc = refinement_conditions(c, a);
                if !rc.objects_ok {
                    let missing: Vec<_> = a.objects().difference(c.objects()).copied().collect();
                    sink.push(
                        Diagnostic::new(
                            Code::P021,
                            format!(
                                "`{concrete}` cannot refine `{abstract_}` (Def. 2, condition 1): O(`{abstract_}`) ⊄ O(`{concrete}`)"
                            ),
                        )
                        .at(*span)
                        .note(format!(
                            "objects of `{abstract_}` missing from `{concrete}`: {}",
                            object_names(&u, missing)
                        )),
                    );
                }
                if !rc.alphabet_ok {
                    let missing = a.alphabet().difference(c.alphabet());
                    let mut d = Diagnostic::new(
                        Code::P021,
                        format!(
                            "`{concrete}` cannot refine `{abstract_}` (Def. 2, condition 2): α(`{abstract_}`) ⊄ α(`{concrete}`)"
                        ),
                    )
                    .at(*span)
                    .note(format!(
                        "events of `{abstract_}` outside α(`{concrete}`): {}",
                        sample_events(&missing, &u, 3)
                    ));
                    // Offer to widen α(concrete) by the missing
                    // patterns.  MaybeIncorrect by design: when
                    // condition 1 also fails, or when the new events
                    // are internal to O(concrete), the widened spec no
                    // longer elaborates (Def. 1 admissibility) — the
                    // author must decide, so `--fix` never applies it.
                    if rc.objects_ok {
                        if let Some(edit) = widen_alphabet_edit(ctx, concrete, &missing) {
                            d = d.with_fix(Fix::suggestion(
                                format!("widen α(`{concrete}`) to cover α(`{abstract_}`)"),
                                vec![edit],
                            ));
                        }
                    }
                    sink.push(d);
                }
            }
            DevStmt::Sound { .. } => {}
        }
    }

    properness(ctx, sink);
}

/// An insertion that appends one template per missing granule after the
/// last alphabet pattern of `concrete`, or `None` when no clean
/// insertion exists: `concrete` must be a literal `spec` block with a
/// non-empty alphabet, and every missing granule must render back into
/// template source (anonymous-environment and undeclared-method blocks
/// do not).  Class-rest granules render as their class name — a
/// superset of the granule, but one whose extra members come from the
/// abstract spec's own class patterns, so the widened alphabet is
/// exactly α(concrete) ∪ α(abstract).
fn widen_alphabet_edit(ctx: &Ctx<'_>, concrete: &str, missing: &EventSet) -> Option<TextEdit> {
    if ctx
        .ast
        .development
        .iter()
        .any(|s| matches!(s, DevStmt::Compose { name, .. } if name == concrete))
    {
        return None;
    }
    let info = ctx.spec_by_name(concrete)?;
    let sd = &ctx.ast.specs[info.decl];
    let last = sd.alphabet.last()?;
    // Insert after the `;` that closes the last pattern.
    let end = (last.span.offset + last.span.len) as usize;
    let rest = ctx.src.get(end..)?;
    let semi = rest.find(';')?;
    if !rest[..semi].trim().is_empty() {
        return None; // unexpected tokens between pattern and `;`
    }
    let insert_at = end + semi + 1;
    let line_start = ctx.src[..last.span.offset as usize].rfind('\n').map(|i| i + 1).unwrap_or(0);
    let prefix = &ctx.src[line_start..last.span.offset as usize];
    let indent: String = prefix.chars().take_while(|c| c.is_whitespace()).collect();
    let mut templates: Vec<String> = Vec::new();
    for g in missing.granules() {
        let t = granule_template_source(&ctx.universe, g)?;
        if !templates.contains(&t) {
            templates.push(t);
        }
    }
    if templates.is_empty() {
        return None;
    }
    let text: String = templates.iter().map(|t| format!("\n{indent}{t};")).collect();
    Some(TextEdit::insert(insert_at, text))
}

/// `P120`: every declared refinement is checked against every declared
/// composition that uses its abstract side as an operand (Def. 14 with
/// the other operand as the context `∆`).
fn properness(ctx: &Ctx<'_>, sink: &mut DiagSink) {
    let u = &ctx.universe;
    for r in &ctx.ast.development {
        let DevStmt::Refine { concrete, abstract_, span: rspan } = r else { continue };
        let (Some(c), Some(a)) = (ctx.dev.get(concrete), ctx.dev.get(abstract_)) else {
            continue;
        };
        for s in &ctx.ast.development {
            let DevStmt::Compose { name, left, right, span: cspan } = s else { continue };
            let delta_name = if abstract_ == left {
                right
            } else if abstract_ == right {
                left
            } else {
                continue;
            };
            let Some(delta) = ctx.dev.get(delta_name) else { continue };
            if is_proper_refinement(c, a, delta) {
                continue;
            }
            let offending = properness_offending_events(c, a).intersect(delta.alphabet());
            let new_objs: Vec<_> = c
                .objects()
                .difference(a.objects())
                .copied()
                .filter(|o| offending.mentions_object(*o))
                .collect();
            sink.push(
                Diagnostic::new(
                    Code::P120,
                    format!(
                        "refining `{abstract_}` to `{concrete}` is not proper for the composition `{name}` (Def. 14): the refinement's new objects communicate with the context `{delta_name}`"
                    ),
                )
                .at(*rspan)
                .note(format!(
                    "offending events α₀ ∩ α(`{delta_name}`), via new objects {}: {}",
                    object_names(u, new_objs),
                    sample_events(&offending, u, 3)
                ))
                .note_at(*cspan, "the affected composition is declared here"),
            );
        }
    }
}
