//! Pass 1 — name and identity resolution.
//!
//! Reports *every* unknown name with its own span (the elaborator stops
//! at the first), duplicate spec/component/composition names (which the
//! elaborator accepts for specs), and self-communication events: the
//! trace semantics treats an object calling itself as internal activity
//! (paper §2), so a template whose caller and callee resolve to the
//! same named object denotes no observable event at all.

use crate::diag::{Code, DiagSink, Diagnostic};
use pospec_alphabet::Universe;
use pospec_lang::parser::{ArgAst, Ast, DevStmt, ReAst, TemplateAst};
use std::collections::BTreeSet;

/// Which specs had name errors (their later elaboration failures are
/// already explained and must not be re-reported as P009).
pub(crate) fn run(ast: &Ast, u: &Universe, sink: &mut DiagSink) -> Vec<bool> {
    let mut dirty = vec![false; ast.specs.len()];

    // Duplicate specification names (the elaborator does not reject
    // these; every later by-name reference silently means the first).
    let mut seen: std::collections::BTreeMap<&str, usize> = Default::default();
    for (i, sd) in ast.specs.iter().enumerate() {
        if let Some(&first) = seen.get(sd.name.as_str()) {
            sink.push(
                Diagnostic::new(Code::P003, format!("duplicate specification name `{}`", sd.name))
                    .at(sd.span)
                    .note_at(ast.specs[first].span, "first declared here"),
            );
        } else {
            seen.insert(&sd.name, i);
        }
    }

    for (i, sd) in ast.specs.iter().enumerate() {
        for (name, nspan) in &sd.objects {
            if u.object_by_name(name).is_none() {
                dirty[i] = true;
                sink.push(
                    Diagnostic::new(Code::P004, format!("unknown object `{name}`")).at(*nspan),
                );
            }
        }
        for t in &sd.alphabet {
            dirty[i] |= check_template(u, t, sink, None);
        }
        if let pospec_lang::parser::TracesAst::Prs(re) = &sd.traces {
            let mut scope = Vec::new();
            dirty[i] |= check_regex(u, re, sink, &mut scope);
        }
    }

    let spec_names: BTreeSet<&str> = ast.specs.iter().map(|s| s.name.as_str()).collect();
    let mut component_names: BTreeSet<&str> = BTreeSet::new();
    for cd in &ast.components {
        if spec_names.contains(cd.name.as_str()) || !component_names.insert(&cd.name) {
            sink.push(
                Diagnostic::new(Code::P003, format!("duplicate name `{}`", cd.name)).at(cd.span),
            );
        }
        for (obj, behav) in &cd.members {
            if u.object_by_name(obj).is_none() {
                sink.push(
                    Diagnostic::new(
                        Code::P004,
                        format!("unknown object `{obj}` in component `{}`", cd.name),
                    )
                    .at(cd.span),
                );
            }
            if !spec_names.contains(behav.as_str()) {
                sink.push(
                    Diagnostic::new(
                        Code::P007,
                        format!("unknown specification `{behav}` in component `{}`", cd.name),
                    )
                    .at(cd.span),
                );
            }
        }
    }

    // Development statements; `compose` introduces names usable later.
    let mut known: BTreeSet<String> = ast.specs.iter().map(|s| s.name.clone()).collect();
    for stmt in &ast.development {
        match stmt {
            DevStmt::Refine { concrete, abstract_, span } => {
                for n in [concrete, abstract_] {
                    if !known.contains(n) {
                        sink.push(
                            Diagnostic::new(Code::P007, format!("unknown specification `{n}`"))
                                .at(*span),
                        );
                    }
                }
            }
            DevStmt::Compose { name, left, right, span } => {
                for n in [left, right] {
                    if !known.contains(n) {
                        sink.push(
                            Diagnostic::new(Code::P007, format!("unknown specification `{n}`"))
                                .at(*span),
                        );
                    }
                }
                if component_names.contains(name.as_str()) || !known.insert(name.clone()) {
                    sink.push(
                        Diagnostic::new(Code::P003, format!("duplicate name `{name}`")).at(*span),
                    );
                }
            }
            DevStmt::Sound { spec, component, span } => {
                if !known.contains(spec) {
                    sink.push(
                        Diagnostic::new(Code::P007, format!("unknown specification `{spec}`"))
                            .at(*span),
                    );
                }
                if !component_names.contains(component.as_str()) {
                    sink.push(
                        Diagnostic::new(Code::P007, format!("unknown component `{component}`"))
                            .at(*span),
                    );
                }
            }
        }
    }

    dirty
}

/// Check one template; `scope` is `Some(bound vars)` in trace position
/// (where free variables are legal-but-suspect) and `None` in alphabet
/// position (where variables are not allowed at all).  Returns whether
/// an error was reported.
fn check_template(
    u: &Universe,
    t: &TemplateAst,
    sink: &mut DiagSink,
    scope: Option<&[String]>,
) -> bool {
    let mut bad = false;
    let mut endpoint = |name: &str, bad: &mut bool| {
        if u.object_by_name(name).is_some() || u.class_by_name(name).is_some() {
            return;
        }
        match scope {
            None => {
                *bad = true;
                sink.push(
                    Diagnostic::new(
                        Code::P004,
                        format!("unknown object or class `{name}` (variables are not allowed in an alphabet)"),
                    )
                    .at(t.span),
                );
            }
            Some(bound) if !bound.iter().any(|v| v == name) => {
                sink.push(
                    Diagnostic::new(
                        Code::P108,
                        format!("`{name}` is a free variable here (no enclosing `[ … . {name} in C ]` binds it); it matches any object — if that is intended, bind it explicitly"),
                    )
                    .at(t.span),
                );
            }
            Some(_) => {}
        }
    };
    endpoint(&t.caller, &mut bad);
    endpoint(&t.callee, &mut bad);
    if let (Some(a), Some(b)) = (u.object_by_name(&t.caller), u.object_by_name(&t.callee)) {
        if a == b {
            sink.push(
                Diagnostic::new(
                    Code::P008,
                    format!(
                        "self-communication `<{0}, {0}, {1}>` denotes no observable event: an object calling itself is internal activity (paper §2)",
                        t.caller, t.method
                    ),
                )
                .at(t.span),
            );
        }
    }
    if u.method_by_name(&t.method).is_none() {
        bad = true;
        sink.push(Diagnostic::new(Code::P005, format!("unknown method `{}`", t.method)).at(t.span));
    }
    if let ArgAst::Name(n) = &t.arg {
        if u.data_by_name(n).is_none() && u.class_by_name(n).is_none() {
            bad = true;
            sink.push(
                Diagnostic::new(Code::P006, format!("unknown data value or class `{n}`"))
                    .at(t.span),
            );
        }
    }
    bad
}

fn check_regex(u: &Universe, re: &ReAst, sink: &mut DiagSink, scope: &mut Vec<String>) -> bool {
    match re {
        ReAst::Eps => false,
        ReAst::Lit(t) => check_template(u, t, sink, Some(scope)),
        ReAst::Seq(parts) | ReAst::Alt(parts) => {
            let mut bad = false;
            for p in parts {
                bad |= check_regex(u, p, sink, scope);
            }
            bad
        }
        ReAst::Star(r) | ReAst::Plus(r) | ReAst::Opt(r) | ReAst::Group(r) => {
            check_regex(u, r, sink, scope)
        }
        ReAst::Bind { body, var, class, span } => {
            let mut bad = false;
            if u.class_by_name(class).is_none() {
                bad = true;
                sink.push(
                    Diagnostic::new(Code::P006, format!("unknown class `{class}`")).at(*span),
                );
            }
            scope.push(var.clone());
            bad |= check_regex(u, body, sink, scope);
            scope.pop();
            bad
        }
    }
}
