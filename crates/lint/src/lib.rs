#![cfg_attr(not(test), deny(clippy::unwrap_used))]
//! `pospec-lint` — a multi-pass static analyzer for `.pos` documents.
//!
//! The checker (`pospec-check`) answers "does this refinement hold?";
//! the linter answers "is this document *sensible*?" before any
//! obligation is discharged.  Six passes share one diagnostic sink:
//!
//! 1. **names** — unknown/duplicate identifiers, self-communication
//!    (`P003`–`P008`, `P108`);
//! 2. **alphabet** — shadowed patterns, unused universe declarations,
//!    unreachable alphabet expansions (`P101`–`P103`);
//! 3. **compose/refine preconditions** — Def. 10 composability, Def. 2
//!    conditions 1–2, Def. 14 properness (`P020`, `P021`, `P120`);
//! 4. **reachability** — ε-only specs, dead patterns, deadlock-prone
//!    compositions (`P104`, `P105`, `P107`);
//! 5. **vacuity** — refinement obligations witnessed only by the empty
//!    trace (`P106`);
//! 6. **wait-for graph** — compositions with no enabled initial event,
//!    decided on the granule algebra without automata (`P110`).
//!
//! Every diagnostic carries a stable code, a severity, a primary span
//! and optional notes; [`LintReport`] renders them for humans (caret
//! lines) or as JSON (shared verbatim by the CLI and the server).
//! Where a provably safe rewrite exists, the diagnostic also carries a
//! [`Fix`] — byte-offset [`TextEdit`]s applied by `pospec lint --fix`
//! and served as LSP code actions.

mod alphabet;
mod automaton;
mod compose_pre;
mod context;
mod diag;
mod fix;
mod names;
mod reach;
mod vacuity;
mod waitfor;

pub use diag::{
    Applicability, Code, DiagSink, Diagnostic, Fix, Level, LintConfig, LintReport, Note, Severity,
    ALL_CODES,
};
pub use pospec_lang::{apply_edits, coalesce_deletions, EditError, TextEdit};

use context::Ctx;
use pospec_core::DfaCache;
use pospec_lang::elab::elaborate_universe;
use pospec_lang::parser::parse;
use pospec_lang::ElabSession;

/// Lint one `.pos` document using the process-wide automaton cache.
///
/// `file` is only used to label the report; `src` is the document text.
pub fn lint_document(file: &str, src: &str, config: &LintConfig) -> LintReport {
    lint_document_cached(file, src, config, DfaCache::global())
}

/// Like [`lint_document`], with an explicit [`DfaCache`] (the server
/// passes its own so lint requests share automata with `check`).
pub fn lint_document_cached(
    file: &str,
    src: &str,
    config: &LintConfig,
    cache: &DfaCache,
) -> LintReport {
    lint_inner(file, src, config, cache, None)
}

/// The incremental entry point: like [`lint_document_cached`], but
/// elaboration goes through an [`ElabSession`] so re-linting an edited
/// document re-elaborates only the changed declarations.  Every pass
/// still runs in full — diagnostics are a pure function of the
/// document, so the report is identical to the non-incremental one;
/// only the elaboration and automaton work is saved (the session keeps
/// the same `Arc<Universe>` alive, which keeps `cache` warm).
pub fn lint_document_session(
    file: &str,
    src: &str,
    config: &LintConfig,
    cache: &DfaCache,
    session: &mut ElabSession,
) -> LintReport {
    lint_inner(file, src, config, cache, Some(session))
}

fn lint_inner(
    file: &str,
    src: &str,
    config: &LintConfig,
    cache: &DfaCache,
    mut session: Option<&mut ElabSession>,
) -> LintReport {
    let mut sink = DiagSink::new(config.clone());

    // P001 — syntax. A parse error is fatal for the later passes, but
    // the report is still well-formed (one diagnostic, correct span).
    let ast = match parse(src) {
        Ok(ast) => ast,
        Err(e) => {
            sink.push(Diagnostic::new(Code::P001, e.message.clone()).at(e.span));
            return sink.finish(file);
        }
    };

    // P002 — the universe itself is inconsistent (duplicate names,
    // unknown classes in memberships/signatures).  Without a universe
    // nothing downstream can resolve, so this also short-circuits.
    let universe = match match session.as_deref_mut() {
        Some(s) => s.universe(&ast).map(|(u, _, _)| u),
        None => elaborate_universe(&ast),
    } {
        Ok(u) => u,
        Err(e) => {
            sink.push(Diagnostic::new(Code::P002, e.message.clone()).at(e.span));
            return sink.finish(file);
        }
    };

    let dirty = names::run(&ast, &universe, &mut sink);
    let mut ctx = Ctx::build(&ast, src, universe, &dirty, config.depth, cache, session, &mut sink);
    compose_pre::run(&mut ctx, &mut sink);
    alphabet::run(&ctx, &mut sink);
    reach::run(&ctx, &mut sink);
    vacuity::run(&ctx, &mut sink);
    waitfor::run(&ctx, &mut sink);
    sink.finish(file)
}

/// What [`time_deadlock_passes`] measured on one document.
#[derive(Debug, Clone)]
pub struct DeadlockTimings {
    /// Number of `compose` statements that actually composed.
    pub compositions: usize,
    /// Compositions the O(edges) wait-for-graph pass flagged (`P110`).
    pub waitfor_flagged: Vec<String>,
    /// Compositions the product-DFA pass flagged (`P105`), immediate
    /// (Ex. 5) and quiescent (Ex. 4) alike.
    pub product_flagged: Vec<String>,
    /// Compositions the product-DFA pass flagged as deadlocking
    /// *immediately* (`T = {ε}`) — the exact shape `P110` decides.
    pub product_immediate: Vec<String>,
    /// Wall-clock nanoseconds of the wait-for-graph pass.
    pub waitfor_nanos: u128,
    /// Wall-clock nanoseconds of the product-DFA pass (automaton
    /// construction included; a fresh cache is used so nothing is warm).
    pub product_nanos: u128,
}

impl DeadlockTimings {
    /// Soundness of the static pass on this document: everything the
    /// wait-for graph flags, the product DFA flags as an immediate
    /// deadlock — and vice versa.
    pub fn agree(&self) -> bool {
        let mut a = self.waitfor_flagged.clone();
        let mut b = self.product_immediate.clone();
        a.sort();
        b.sort();
        a == b
    }
}

/// Run *only* the two deadlock analyses over `src` and time them, for
/// the paper-report comparison (wait-for graph vs product DFA at
/// N=10/100/1000).  Elaboration and the other passes run untimed
/// beforehand; the product pass gets a fresh automaton cache so its
/// cost includes DFA construction, exactly what a cold lint pays.
/// Returns `None` when the document does not parse or its universe does
/// not elaborate.
pub fn time_deadlock_passes(src: &str, depth: usize) -> Option<DeadlockTimings> {
    let mut config = LintConfig::default();
    config.depth = depth;
    let ast = parse(src).ok()?;
    let universe = elaborate_universe(&ast).ok()?;
    let cache = DfaCache::new();
    let mut scratch = DiagSink::new(config.clone());
    let dirty = names::run(&ast, &universe, &mut scratch);
    let mut ctx = Ctx::build(&ast, src, universe, &dirty, config.depth, &cache, None, &mut scratch);
    compose_pre::run(&mut ctx, &mut scratch);
    let compositions = ctx
        .ast
        .development
        .iter()
        .filter(|s| {
            matches!(s, pospec_lang::parser::DevStmt::Compose { name, .. }
                if ctx.dev.contains_key(name))
        })
        .count();

    let t0 = std::time::Instant::now();
    let waitfor_flagged: Vec<String> =
        waitfor::candidates(&ctx).into_iter().map(|c| c.name).collect();
    let waitfor_nanos = t0.elapsed().as_nanos();

    let t1 = std::time::Instant::now();
    let product = reach::product_deadlocks(&ctx);
    let product_nanos = t1.elapsed().as_nanos();
    let product_immediate =
        product.iter().filter(|d| d.witness.is_none()).map(|d| d.name.clone()).collect();
    let product_flagged = product.into_iter().map(|d| d.name).collect();

    Some(DeadlockTimings {
        compositions,
        waitfor_flagged,
        product_flagged,
        product_immediate,
        waitfor_nanos,
        product_nanos,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn codes(report: &LintReport) -> Vec<Code> {
        report.diagnostics.iter().map(|d| d.code).collect()
    }

    fn lint(src: &str) -> LintReport {
        lint_document("test.pos", src, &LintConfig::default())
    }

    // Def. 1 requires an infinite (open-environment) alphabet, so every
    // fixture includes a class comprehension alongside its finite core.
    const CLEAN: &str = "\
universe { class Env; object o; object b; method OP; witnesses Env 1; }
spec S {
  objects { o }
  alphabet { <Env, o, OP>; <o, b, OP>; <b, o, OP>; }
  traces prs (<o, b, OP> <b, o, OP>)*;
}
";

    #[test]
    fn a_clean_document_produces_no_diagnostics() {
        let r = lint(CLEAN);
        assert!(r.is_clean(), "unexpected: {:?}", r.diagnostics);
    }

    #[test]
    fn syntax_errors_are_p001_with_a_span() {
        let r = lint("universe { object }");
        assert_eq!(codes(&r), vec![Code::P001]);
        assert!(r.diagnostics[0].span.is_some());
        assert!(r.has_errors());
    }

    #[test]
    fn universe_errors_are_p002() {
        let r = lint("universe { object o; object o; } ");
        assert_eq!(codes(&r), vec![Code::P002]);
    }

    #[test]
    fn unknown_names_all_reported_not_just_the_first() {
        let r = lint(
            "universe { object o; method OP; }\n\
             spec S { objects { o zap } alphabet { <o, pow, OP>; } traces any; }\n",
        );
        assert_eq!(codes(&r), vec![Code::P004, Code::P004]);
        let spans: Vec<_> = r.diagnostics.iter().map(|d| d.span.expect("span")).collect();
        assert!(spans[0].offset < spans[1].offset);
    }

    #[test]
    fn self_communication_is_p008() {
        let r = lint(
            "universe { object o; object b; method OP; }\n\
             spec S { objects { o } alphabet { <o, o, OP>; } traces any; }\n",
        );
        assert!(codes(&r).contains(&Code::P008), "{:?}", r.diagnostics);
    }

    #[test]
    fn shadowed_pattern_is_p101_with_a_covering_note() {
        let r = lint(
            "universe { class C; object c : C; object o; method OW; }\n\
             spec S {\n\
               objects { o }\n\
               alphabet { <C, o, OW>; <c, o, OW>; }\n\
               traces any;\n\
             }\n",
        );
        assert_eq!(codes(&r), vec![Code::P101]);
        let d = &r.diagnostics[0];
        assert_eq!(d.severity, Severity::Warning);
        assert_eq!(d.span.expect("span").line, 4);
        assert_eq!(d.notes.len(), 1);
    }

    #[test]
    fn non_composable_pair_is_p020_naming_the_internal_events() {
        let r = lint(
            "universe { class Env; object o; object b; method OK; witnesses Env 1; }\n\
             spec Left { objects { o } alphabet { <Env, o, OK>; <o, b, OK>; } traces any; }\n\
             spec Right { objects { o b } alphabet { <Env, b, OK>; } traces any; }\n\
             development { compose Both from Left with Right; }\n",
        );
        assert!(codes(&r).contains(&Code::P020), "{:?}", r.diagnostics);
        let d = r.diagnostics.iter().find(|d| d.code == Code::P020).expect("P020");
        assert!(d.message.contains("Def. 10"));
        assert!(d.notes.iter().any(|n| n.message.contains("⟨o,b,OK⟩")), "{:?}", d.notes);
    }

    #[test]
    fn failed_static_refinement_conditions_are_p021() {
        let r = lint(
            "universe { class Env; object o; object b; object c; method OP; witnesses Env 1; }\n\
             spec A { objects { o c } alphabet { <Env, o, OP>; <o, b, OP>; <c, b, OP>; } traces any; }\n\
             spec C { objects { o } alphabet { <Env, o, OP>; <o, b, OP>; } traces any; }\n\
             development { refine C of A; }\n",
        );
        let got = codes(&r);
        assert_eq!(got.iter().filter(|c| **c == Code::P021).count(), 2, "{:?}", r.diagnostics);
    }

    #[test]
    fn epsilon_only_spec_is_p107_and_vacuous_refinement_is_p106() {
        let r = lint(
            "universe { class Env; object o; object b; method OP; witnesses Env 1; }\n\
             spec A { objects { o } alphabet { <Env, o, OP>; <o, b, OP>; } traces prs <o, b, OP>?; }\n\
             spec C { objects { o } alphabet { <Env, o, OP>; <o, b, OP>; } traces prs eps; }\n\
             development { refine C of A; }\n",
        );
        let got = codes(&r);
        assert!(got.contains(&Code::P107), "{:?}", r.diagnostics);
        assert!(got.contains(&Code::P106), "{:?}", r.diagnostics);
    }

    #[test]
    fn deadlocking_composition_is_p105() {
        // Ex. 4/5 shape: each side insists on a different first event.
        let r = lint(
            "universe { class Env; object o; object b; method OP; witnesses Env 1; }\n\
             spec L { objects { o } alphabet { <Env, o, OP>; <o, b, OP>; <b, o, OP>; } traces prs <o, b, OP> <b, o, OP>*; }\n\
             spec R { objects { b } alphabet { <Env, b, OP>; <o, b, OP>; <b, o, OP>; } traces prs <b, o, OP> <o, b, OP>*; }\n\
             development { compose Both from L with R; }\n",
        );
        assert!(codes(&r).contains(&Code::P105), "{:?}", r.diagnostics);
    }

    #[test]
    fn deny_warnings_promotes_severity_in_the_report() {
        let src = "universe { class Env; object o; object b; method OP; method DEAD; witnesses Env 1; }\n\
             spec S { objects { o } alphabet { <Env, o, OP>; <o, b, OP>; } traces any; }\n";
        let relaxed = lint(src);
        assert!(!relaxed.has_errors() && !relaxed.is_clean(), "{:?}", relaxed.diagnostics);
        let mut cfg = LintConfig::default();
        cfg.deny_warnings = true;
        let strict = lint_document("test.pos", src, &cfg);
        assert!(strict.has_errors());
    }

    #[test]
    fn unused_method_is_p102_and_allow_suppresses_it() {
        let src = "universe { class Env; object o; object b; method OP; method DEAD; witnesses Env 1; }\n\
             spec S { objects { o } alphabet { <Env, o, OP>; <o, b, OP>; } traces any; }\n";
        let r = lint(src);
        assert_eq!(codes(&r), vec![Code::P102]);
        assert!(r.diagnostics[0].message.contains("`DEAD`"));
        let mut cfg = LintConfig::default();
        cfg.set(Code::P102, Level::Allow);
        assert!(lint_document("test.pos", src, &cfg).is_clean());
    }
}
