//! Property-based tests of the trace-notation laws used by the paper's
//! proofs.
//!
//! The key identity is the one invoked in the proof of Theorem 7:
//! `h/S₁\S₂ = h\S₂/(S₁−S₂)` for any trace `h` and event sets `S₁`, `S₂`.

use pospec_trace::{Arg, Complement, Difference, Event, EventFilter, MethodId, ObjectId, Trace};
use proptest::prelude::*;

/// A small concrete universe for generated traces.
fn arb_event() -> impl Strategy<Value = Event> {
    (0u32..5, 0u32..5, 0u32..4).prop_filter_map("no self-calls", |(c, t, m)| {
        Event::new(ObjectId(c), ObjectId(t), MethodId(m), Arg::None).ok()
    })
}

fn arb_trace() -> impl Strategy<Value = Trace> {
    prop::collection::vec(arb_event(), 0..24).prop_map(Trace::from_events)
}

/// A "random event set" as a membership bitmap over the small universe.
#[derive(Debug, Clone)]
struct BitSet(Vec<bool>);

impl BitSet {
    fn key(e: &Event) -> usize {
        (e.caller.0 as usize) * 20 + (e.callee.0 as usize) * 4 + e.method.0 as usize
    }
}

impl EventFilter for BitSet {
    fn contains_event(&self, e: &Event) -> bool {
        self.0.get(Self::key(e)).copied().unwrap_or(false)
    }
}

fn arb_set() -> impl Strategy<Value = BitSet> {
    prop::collection::vec(any::<bool>(), 100).prop_map(BitSet)
}

proptest! {
    /// `h/S₁\S₂ = h\S₂/(S₁−S₂)` — the projection/deletion exchange law
    /// from the proof of Theorem 7.
    #[test]
    fn projection_deletion_exchange(h in arb_trace(), s1 in arb_set(), s2 in arb_set()) {
        let lhs = h.project(&s1).delete(&s2);
        let rhs = h.delete(&s2).project(&Difference(s1.clone(), s2.clone()));
        prop_assert_eq!(lhs, rhs);
    }

    /// Projection is idempotent: `(h/S)/S = h/S`.
    #[test]
    fn projection_idempotent(h in arb_trace(), s in arb_set()) {
        let once = h.project(&s);
        prop_assert_eq!(once.project(&s), once);
    }

    /// Projections to arbitrary sets commute: `(h/S₁)/S₂ = (h/S₂)/S₁`.
    #[test]
    fn projections_commute(h in arb_trace(), s1 in arb_set(), s2 in arb_set()) {
        prop_assert_eq!(
            h.project(&s1).project(&s2),
            h.project(&s2).project(&s1)
        );
    }

    /// Deletion equals projection to the complement: `h\S = h/¬S`.
    #[test]
    fn deletion_is_complement_projection(h in arb_trace(), s in arb_set()) {
        prop_assert_eq!(h.delete(&s), h.project(&Complement(s.clone())));
    }

    /// Projection distributes over concatenation.
    #[test]
    fn projection_distributes_over_concat(a in arb_trace(), b in arb_trace(), s in arb_set()) {
        prop_assert_eq!(
            a.concat(&b).project(&s),
            a.project(&s).concat(&b.project(&s))
        );
    }

    /// Projection is monotone w.r.t. prefixes: if `p` is a prefix of `h`
    /// then `p/S` is a prefix of `h/S`.  This is what makes projected
    /// prefix-closed trace sets prefix closed again.
    #[test]
    fn projection_preserves_prefix_order(h in arb_trace(), k in 0usize..25, s in arb_set()) {
        let p = h.prefix(k);
        prop_assert!(p.project(&s).is_prefix_of(&h.project(&s)));
    }

    /// Every prefix of a prefix is a prefix of the original.
    #[test]
    fn prefix_transitivity(h in arb_trace(), k in 0usize..25, j in 0usize..25) {
        let p = h.prefix(k);
        let q = p.prefix(j);
        prop_assert!(q.is_prefix_of(&h.prefix(k)));
        prop_assert!(q.is_prefix_of(&h));
    }

    /// `h.prefixes()` yields exactly `len+1` traces, each a prefix of the
    /// next.
    #[test]
    fn prefixes_form_a_chain(h in arb_trace()) {
        let ps: Vec<Trace> = h.prefixes().collect();
        prop_assert_eq!(ps.len(), h.len() + 1);
        for w in ps.windows(2) {
            prop_assert!(w[0].is_prefix_of(&w[1]));
        }
    }

    /// Per-object projection agrees with generic projection over the
    /// involvement filter.
    #[test]
    fn object_projection_agrees_with_filter(h in arb_trace(), i in 0u32..5) {
        let o = ObjectId(i);
        prop_assert_eq!(
            h.project_object(o),
            h.project(&|e: &Event| e.involves(o))
        );
    }

    /// Counting via projection and direct counting agree.
    #[test]
    fn count_matches_projection_length(h in arb_trace(), i in 0u32..4) {
        let m = MethodId(i);
        prop_assert_eq!(h.count_method(m), h.project_method(m).len());
    }
}
