//! Communication events `⟨caller, callee, method(arg)⟩`.
//!
//! Paper §2: *"a communication event [...] is a triple ⟨o₂, o₁, m⟩ where
//! o₁, o₂ ∈ Obj and m ∈ Mtd"*, with `o₁ ≠ o₂` for observable events (an
//! object calling itself is internal activity and never appears in traces).
//! We additionally carry the optional method parameter (`R(d)`, `W(d)`)
//! which the paper treats informally via parameterised alphabets.

use crate::ident::{DataId, MethodId, ObjectId};
use std::fmt;

/// The argument slot of an event.
///
/// The paper's alphabets range over parameterised events like
/// `⟨x, o, W(d)⟩ | d ∈ Data` alongside unparameterised ones like
/// `⟨x, o, OW⟩`; the two are distinguished here by [`Arg::None`] vs
/// [`Arg::Data`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum Arg {
    /// No parameter (e.g. `OW`, `CW`).
    #[default]
    None,
    /// A data-valued parameter (e.g. the `d` in `W(d)`).
    Data(DataId),
}

impl Arg {
    /// Is this the empty argument?
    #[inline]
    pub fn is_none(self) -> bool {
        matches!(self, Arg::None)
    }

    /// The carried data value, if any.
    #[inline]
    pub fn data(self) -> Option<DataId> {
        match self {
            Arg::None => None,
            Arg::Data(d) => Some(d),
        }
    }
}

/// Errors arising when constructing an event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventError {
    /// `caller == callee`: self-calls are internal activity, not observable
    /// communication (paper §2: "When an object calls methods in itself,
    /// this activity is understood as internal").
    SelfCall(ObjectId),
}

impl fmt::Display for EventError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EventError::SelfCall(o) => {
                write!(f, "self-call on {o} is internal activity, not an observable event")
            }
        }
    }
}

impl std::error::Error for EventError {}

/// An observable communication event: `caller` invokes `method(arg)` on
/// `callee`.
///
/// The paper writes this `⟨o₂, o₁, m⟩` with `o₂` the caller and `o₁` the
/// provider of the method; we use named fields to avoid the positional
/// ambiguity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Event {
    /// The object issuing the remote call (`o₂`).
    pub caller: ObjectId,
    /// The object whose method is called (`o₁`).
    pub callee: ObjectId,
    /// The method name (`m`).
    pub method: MethodId,
    /// The method parameter, if the method is parameterised.
    pub arg: Arg,
}

impl Event {
    /// Construct an event, rejecting self-calls.
    pub fn new(
        caller: ObjectId,
        callee: ObjectId,
        method: MethodId,
        arg: Arg,
    ) -> Result<Self, EventError> {
        if caller == callee {
            return Err(EventError::SelfCall(caller));
        }
        Ok(Event { caller, callee, method, arg })
    }

    /// Construct an unparameterised event, panicking on a self-call.
    ///
    /// Convenience for tests and examples where identities are statically
    /// distinct.
    pub fn call(caller: ObjectId, callee: ObjectId, method: MethodId) -> Self {
        Self::new(caller, callee, method, Arg::None).expect("distinct caller/callee")
    }

    /// Construct a parameterised event, panicking on a self-call.
    pub fn call_with(caller: ObjectId, callee: ObjectId, method: MethodId, d: DataId) -> Self {
        Self::new(caller, callee, method, Arg::Data(d)).expect("distinct caller/callee")
    }

    /// Does this event involve the object `o` (as caller or callee)?
    ///
    /// This is the membership test behind the paper's per-object projection
    /// `h/o`.
    #[inline]
    pub fn involves(&self, o: ObjectId) -> bool {
        self.caller == o || self.callee == o
    }

    /// Is this event *internal* to the object set `S`, i.e. are both its
    /// endpoints members of `S`?  (Def. 3 / Def. 8.)
    #[inline]
    pub fn internal_to(&self, mut members: impl FnMut(ObjectId) -> bool) -> bool {
        members(self.caller) && members(self.callee)
    }

    /// The two endpoints `(caller, callee)`.
    #[inline]
    pub fn endpoints(&self) -> (ObjectId, ObjectId) {
        (self.caller, self.callee)
    }
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.arg {
            Arg::None => write!(f, "<{},{},{}>", self.caller, self.callee, self.method),
            Arg::Data(d) => write!(f, "<{},{},{}({})>", self.caller, self.callee, self.method, d),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn o(i: u32) -> ObjectId {
        ObjectId(i)
    }
    fn m(i: u32) -> MethodId {
        MethodId(i)
    }

    #[test]
    fn self_calls_are_rejected() {
        let err = Event::new(o(1), o(1), m(0), Arg::None).unwrap_err();
        assert_eq!(err, EventError::SelfCall(o(1)));
    }

    #[test]
    fn distinct_endpoints_are_accepted() {
        let e = Event::new(o(1), o(2), m(0), Arg::None).unwrap();
        assert_eq!(e.endpoints(), (o(1), o(2)));
    }

    #[test]
    #[should_panic(expected = "distinct caller/callee")]
    fn call_helper_panics_on_self_call() {
        let _ = Event::call(o(3), o(3), m(0));
    }

    #[test]
    fn involves_checks_both_endpoints() {
        let e = Event::call(o(1), o(2), m(0));
        assert!(e.involves(o(1)));
        assert!(e.involves(o(2)));
        assert!(!e.involves(o(3)));
    }

    #[test]
    fn internal_to_requires_both_endpoints() {
        let e = Event::call(o(1), o(2), m(0));
        assert!(e.internal_to(|x| x == o(1) || x == o(2)));
        assert!(!e.internal_to(|x| x == o(1)));
        assert!(!e.internal_to(|_| false));
    }

    #[test]
    fn arg_accessors() {
        assert!(Arg::None.is_none());
        assert_eq!(Arg::None.data(), None);
        assert_eq!(Arg::Data(DataId(4)).data(), Some(DataId(4)));
        assert!(!Arg::Data(DataId(4)).is_none());
    }

    #[test]
    fn display_includes_parameter_when_present() {
        let e = Event::call_with(o(1), o(2), m(3), DataId(7));
        assert_eq!(e.to_string(), "<o#1,o#2,m#3(d#7)>");
        let e2 = Event::call(o(1), o(2), m(3));
        assert_eq!(e2.to_string(), "<o#1,o#2,m#3>");
    }

    #[test]
    fn events_order_lexicographically() {
        let a = Event::call(o(1), o(2), m(0));
        let b = Event::call(o(1), o(2), m(1));
        let c = Event::call(o(2), o(1), m(0));
        assert!(a < b);
        assert!(b < c);
    }
}
