//! Interned identifier types for objects, methods, classes and data values.
//!
//! All four are thin `u32` indices into interner tables owned by
//! `pospec_alphabet::Universe`.  Keeping them as plain newtypes here lets
//! every crate in the workspace share event and trace types without pulling
//! in the symbolic-set machinery.

use std::fmt;

macro_rules! id_newtype {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash,
        )]
        pub struct $name(pub u32);

        impl $name {
            /// The raw interner index.
            #[inline]
            pub const fn index(self) -> usize {
                self.0 as usize
            }

            /// Construct from a raw interner index.
            #[inline]
            pub const fn from_index(i: usize) -> Self {
                Self(i as u32)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

id_newtype!(
    /// The identity of an object (the paper's `Obj` sort).
    ///
    /// Object identities are *explicit* in this formalism: events carry the
    /// identities of both caller and callee, which is what distinguishes it
    /// from channel-based trace formalisms (paper §9).
    ObjectId,
    "o#"
);

id_newtype!(
    /// A method name (the paper's `Mtd` sort), e.g. `R`, `W`, `OW`, `CW`.
    MethodId,
    "m#"
);

id_newtype!(
    /// An object or data *class* (sort), e.g. the paper's `Objects ⊆ Obj`
    /// ("a subtype of Obj not containing o") or the data sort `Data`.
    ClassId,
    "c#"
);

id_newtype!(
    /// An interned data value used as a method parameter (the `d` in
    /// `R(d)` / `W(d)`).
    DataId,
    "d#"
);

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn ids_roundtrip_through_indices() {
        for i in [0usize, 1, 7, 42, u32::MAX as usize] {
            assert_eq!(ObjectId::from_index(i).index(), i);
            assert_eq!(MethodId::from_index(i).index(), i);
            assert_eq!(ClassId::from_index(i).index(), i);
            assert_eq!(DataId::from_index(i).index(), i);
        }
    }

    #[test]
    fn ids_are_ordered_by_index() {
        let mut set = BTreeSet::new();
        set.insert(ObjectId(3));
        set.insert(ObjectId(1));
        set.insert(ObjectId(2));
        let ordered: Vec<_> = set.into_iter().collect();
        assert_eq!(ordered, vec![ObjectId(1), ObjectId(2), ObjectId(3)]);
    }

    #[test]
    fn display_formats_are_distinct_per_kind() {
        assert_eq!(ObjectId(5).to_string(), "o#5");
        assert_eq!(MethodId(5).to_string(), "m#5");
        assert_eq!(ClassId(5).to_string(), "c#5");
        assert_eq!(DataId(5).to_string(), "d#5");
    }

    #[test]
    fn copy_semantics_preserve_equality() {
        let o = ObjectId(9);
        let o2 = o;
        assert_eq!(o, o2);
        assert_ne!(o, ObjectId(10));
    }
}
