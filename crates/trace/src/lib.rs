//! Communication events and finite communication traces.
//!
//! This crate implements the semantic ground layer of Johnsen & Owe,
//! *Composition and Refinement for Partial Object Specifications* (2002),
//! §2: objects are modelled by finite sequences of **communication events**
//! `⟨caller, callee, method(arg)⟩` that record remote method calls between
//! distinct object identities.  Internal activity (an object calling itself)
//! is not observable and therefore cannot be represented: [`Event::new`]
//! rejects `caller == callee`.
//!
//! The crate also provides the paper's trace notation:
//!
//! * `h/S`  — [`Trace::project`]: keep only the events in `S`;
//! * `h\S`  — [`Trace::delete`]: remove the events in `S`;
//! * `h/o`  — [`Trace::project_object`]: events involving the object `o`;
//! * `h/M`  — [`Trace::project_method`]: events carrying the method `M`;
//! * `#(h)` — [`Trace::len`].
//!
//! Identifier types ([`ObjectId`], [`MethodId`], [`ClassId`], [`DataId`])
//! are plain interned indices; the interner itself lives in
//! `pospec-alphabet`'s `Universe` so that this crate stays dependency-free.

pub mod event;
pub mod ident;
pub mod trace;

pub use event::{Arg, Event, EventError};
pub use ident::{ClassId, DataId, MethodId, ObjectId};
pub use trace::{IdSet, Trace, TraceBuilder};

/// Anything that can decide membership of a concrete [`Event`].
///
/// Projection and deletion (`h/S`, `h\S`) are parameterised over this trait
/// so that `pospec-trace` does not depend on the symbolic set representation
/// in `pospec-alphabet` (whose `EventSet` implements it).
pub trait EventFilter {
    /// Does this set contain the event `e`?
    fn contains_event(&self, e: &Event) -> bool;
}

impl<F: Fn(&Event) -> bool> EventFilter for F {
    fn contains_event(&self, e: &Event) -> bool {
        self(e)
    }
}

/// The complement of a filter, `¬S`; useful because `h\S = h/¬S`.
#[derive(Debug, Clone, Copy)]
pub struct Complement<S>(pub S);

impl<S: EventFilter> EventFilter for Complement<S> {
    fn contains_event(&self, e: &Event) -> bool {
        !self.0.contains_event(e)
    }
}

/// The difference of two filters, `S₁ − S₂`.
///
/// Used to state the projection law from the proof of Theorem 7:
/// `h/S₁\S₂ = h\S₂/(S₁−S₂)`.
#[derive(Debug, Clone, Copy)]
pub struct Difference<A, B>(pub A, pub B);

impl<A: EventFilter, B: EventFilter> EventFilter for Difference<A, B> {
    fn contains_event(&self, e: &Event) -> bool {
        self.0.contains_event(e) && !self.1.contains_event(e)
    }
}

/// The union of two filters, `S₁ ∪ S₂`.
#[derive(Debug, Clone, Copy)]
pub struct Union<A, B>(pub A, pub B);

impl<A: EventFilter, B: EventFilter> EventFilter for Union<A, B> {
    fn contains_event(&self, e: &Event) -> bool {
        self.0.contains_event(e) || self.1.contains_event(e)
    }
}

/// The intersection of two filters, `S₁ ∩ S₂`.
#[derive(Debug, Clone, Copy)]
pub struct Intersection<A, B>(pub A, pub B);

impl<A: EventFilter, B: EventFilter> EventFilter for Intersection<A, B> {
    fn contains_event(&self, e: &Event) -> bool {
        self.0.contains_event(e) && self.1.contains_event(e)
    }
}
