//! Finite communication traces with O(1) structural-sharing prefixes.
//!
//! A [`Trace`] is an immutable finite sequence of [`Event`]s.  Because the
//! theory quantifies constantly over *prefixes* (trace sets are prefix
//! closed; `h prs R` asks whether `h` is a prefix of a word of `R`), the
//! representation is an `Arc<[Event]>` plus a length: taking a prefix is a
//! pointer copy, and the bounded-exploration engine in `pospec-check` walks
//! millions of prefixes without allocation.

use crate::event::Event;
use crate::ident::{MethodId, ObjectId};
use crate::EventFilter;
use std::fmt;
use std::sync::Arc;

/// An immutable finite trace of communication events.
#[derive(Clone)]
pub struct Trace {
    events: Arc<[Event]>,
    len: usize,
}

impl Trace {
    /// The empty trace `ε`.
    pub fn empty() -> Self {
        Trace { events: Arc::from(Vec::new()), len: 0 }
    }

    /// Build a trace from a vector of events.
    pub fn from_events(events: Vec<Event>) -> Self {
        let len = events.len();
        Trace { events: events.into(), len }
    }

    /// The number of events, the paper's `#(h)`.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Is this the empty trace?
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The events of the trace as a slice.
    #[inline]
    pub fn events(&self) -> &[Event] {
        &self.events[..self.len]
    }

    /// Iterate over the events.
    pub fn iter(&self) -> impl Iterator<Item = &Event> + '_ {
        self.events().iter()
    }

    /// The last event, if any.
    pub fn last(&self) -> Option<&Event> {
        self.events().last()
    }

    /// The prefix of length `k` (clamped to `len`), sharing storage — O(1).
    pub fn prefix(&self, k: usize) -> Trace {
        Trace { events: Arc::clone(&self.events), len: k.min(self.len) }
    }

    /// All prefixes of the trace, from `ε` to the trace itself (inclusive).
    ///
    /// A trace of length n yields n+1 prefixes.  Each is O(1) to produce.
    pub fn prefixes(&self) -> impl Iterator<Item = Trace> + '_ {
        (0..=self.len).map(move |k| self.prefix(k))
    }

    /// All *proper* prefixes (excluding the trace itself).
    pub fn proper_prefixes(&self) -> impl Iterator<Item = Trace> + '_ {
        (0..self.len).map(move |k| self.prefix(k))
    }

    /// Extend with one event, producing a new trace (O(n) copy).
    pub fn extended(&self, e: Event) -> Trace {
        let mut v = Vec::with_capacity(self.len + 1);
        v.extend_from_slice(self.events());
        v.push(e);
        Trace::from_events(v)
    }

    /// Concatenate two traces.
    pub fn concat(&self, other: &Trace) -> Trace {
        let mut v = Vec::with_capacity(self.len + other.len);
        v.extend_from_slice(self.events());
        v.extend_from_slice(other.events());
        Trace::from_events(v)
    }

    /// Projection `h/S`: the subtrace of events contained in `S`.
    pub fn project<S: EventFilter + ?Sized>(&self, s: &S) -> Trace {
        Trace::from_events(self.iter().filter(|e| s.contains_event(e)).copied().collect())
    }

    /// Deletion `h\S`: the subtrace of events *not* contained in `S`.
    pub fn delete<S: EventFilter + ?Sized>(&self, s: &S) -> Trace {
        Trace::from_events(self.iter().filter(|e| !s.contains_event(e)).copied().collect())
    }

    /// Per-object projection `h/o`: the events involving `o` as caller or
    /// callee.
    pub fn project_object(&self, o: ObjectId) -> Trace {
        Trace::from_events(self.iter().filter(|e| e.involves(o)).copied().collect())
    }

    /// Per-*caller* projection: the events issued by `o`.
    ///
    /// Example 3 writes `h/x` for the restriction to the events of a calling
    /// object `x`; in the RW specification all events have `o` as callee, so
    /// per-caller projection is the faithful reading.
    pub fn project_caller(&self, o: ObjectId) -> Trace {
        Trace::from_events(self.iter().filter(|e| e.caller == o).copied().collect())
    }

    /// Per-method projection `h/M`: the events whose method is `M`
    /// (any endpoints, any argument).
    pub fn project_method(&self, m: MethodId) -> Trace {
        Trace::from_events(self.iter().filter(|e| e.method == m).copied().collect())
    }

    /// `#(h/M)` — the number of `M`-events, used by the counting predicate
    /// `P_RW2` of Example 3.
    pub fn count_method(&self, m: MethodId) -> usize {
        self.iter().filter(|e| e.method == m).count()
    }

    /// The set of distinct caller identities occurring in the trace.
    ///
    /// Returned as an [`IdSet`]: a sorted, duplicate-free small-vec that
    /// stays on the stack for up to [`IdSet::INLINE_CAP`] distinct
    /// identities.  Predicate trace sets call this once per *membership
    /// query*, so the common few-objects case must not allocate.
    pub fn callers(&self) -> IdSet {
        let mut set = IdSet::new();
        for e in self.iter() {
            set.insert(e.caller);
        }
        set
    }

    /// The set of distinct object identities occurring in the trace
    /// (callers and callees).  See [`Trace::callers`] for the
    /// representation.
    pub fn objects(&self) -> IdSet {
        let mut set = IdSet::new();
        for e in self.iter() {
            set.insert(e.caller);
            set.insert(e.callee);
        }
        set
    }

    /// Is `self` a prefix of `other`?
    pub fn is_prefix_of(&self, other: &Trace) -> bool {
        self.len <= other.len && self.events() == &other.events()[..self.len]
    }
}

/// A sorted, duplicate-free set of [`ObjectId`]s with inline storage.
///
/// [`Trace::callers`] and [`Trace::objects`] are called once per
/// membership query by predicate trace sets, and the traces the
/// exploration engine feeds them rarely mention more than a handful of
/// distinct identities.  `IdSet` keeps up to [`IdSet::INLINE_CAP`]
/// identities in an inline array — no heap allocation — and spills to a
/// `Vec` only beyond that.  It dereferences to a sorted `[ObjectId]`
/// slice, so `contains`, `iter`, indexing and slice patterns all work,
/// and it compares equal to a `Vec<ObjectId>`/`&[ObjectId]` with the
/// same elements.
#[derive(Clone)]
pub struct IdSet {
    inline: [ObjectId; IdSet::INLINE_CAP],
    /// Number of live entries in `inline`; meaningless once spilled.
    len: usize,
    /// Heap storage, used only when the set outgrows `inline`.
    spill: Vec<ObjectId>,
}

impl IdSet {
    /// Distinct identities held without touching the heap.
    pub const INLINE_CAP: usize = 8;

    /// The empty set.
    pub fn new() -> Self {
        IdSet { inline: [ObjectId(0); Self::INLINE_CAP], len: 0, spill: Vec::new() }
    }

    /// Insert `id`, keeping the storage sorted and duplicate-free.
    pub fn insert(&mut self, id: ObjectId) {
        if !self.spill.is_empty() {
            if let Err(i) = self.spill.binary_search(&id) {
                self.spill.insert(i, id);
            }
            return;
        }
        match self.inline[..self.len].binary_search(&id) {
            Ok(_) => {}
            Err(i) if self.len < Self::INLINE_CAP => {
                self.inline.copy_within(i..self.len, i + 1);
                self.inline[i] = id;
                self.len += 1;
            }
            Err(i) => {
                let mut v = Vec::with_capacity(Self::INLINE_CAP * 2);
                v.extend_from_slice(&self.inline[..i]);
                v.push(id);
                v.extend_from_slice(&self.inline[i..self.len]);
                self.spill = v;
            }
        }
    }

    /// The elements as a sorted slice.
    #[inline]
    pub fn as_slice(&self) -> &[ObjectId] {
        if self.spill.is_empty() {
            &self.inline[..self.len]
        } else {
            &self.spill
        }
    }

    /// Has the set outgrown its inline storage?  Exposed so benchmarks
    /// and tests can assert the no-allocation fast path was taken.
    #[inline]
    pub fn spilled(&self) -> bool {
        !self.spill.is_empty()
    }

    /// Iterate over the identities in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = ObjectId> + '_ {
        self.as_slice().iter().copied()
    }
}

impl Default for IdSet {
    fn default() -> Self {
        Self::new()
    }
}

impl std::ops::Deref for IdSet {
    type Target = [ObjectId];
    #[inline]
    fn deref(&self) -> &[ObjectId] {
        self.as_slice()
    }
}

impl PartialEq for IdSet {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for IdSet {}

impl PartialEq<Vec<ObjectId>> for IdSet {
    fn eq(&self, other: &Vec<ObjectId>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialEq<&[ObjectId]> for IdSet {
    fn eq(&self, other: &&[ObjectId]) -> bool {
        self.as_slice() == *other
    }
}

impl<const N: usize> PartialEq<[ObjectId; N]> for IdSet {
    fn eq(&self, other: &[ObjectId; N]) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl fmt::Debug for IdSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.as_slice()).finish()
    }
}

impl IntoIterator for IdSet {
    type Item = ObjectId;
    type IntoIter = IdSetIntoIter;
    fn into_iter(self) -> IdSetIntoIter {
        IdSetIntoIter { set: self, next: 0 }
    }
}

impl<'a> IntoIterator for &'a IdSet {
    type Item = ObjectId;
    type IntoIter = std::iter::Copied<std::slice::Iter<'a, ObjectId>>;
    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter().copied()
    }
}

impl FromIterator<ObjectId> for IdSet {
    fn from_iter<I: IntoIterator<Item = ObjectId>>(iter: I) -> Self {
        let mut set = IdSet::new();
        for id in iter {
            set.insert(id);
        }
        set
    }
}

/// Owning iterator over an [`IdSet`], in ascending order.
pub struct IdSetIntoIter {
    set: IdSet,
    next: usize,
}

impl Iterator for IdSetIntoIter {
    type Item = ObjectId;
    fn next(&mut self) -> Option<ObjectId> {
        let item = self.set.as_slice().get(self.next).copied();
        if item.is_some() {
            self.next += 1;
        }
        item
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.set.as_slice().len() - self.next;
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for IdSetIntoIter {}

impl PartialEq for Trace {
    fn eq(&self, other: &Self) -> bool {
        self.events() == other.events()
    }
}
impl Eq for Trace {}

impl PartialOrd for Trace {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Trace {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.events().cmp(other.events())
    }
}

impl std::hash::Hash for Trace {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.events().hash(state)
    }
}

impl fmt::Debug for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Trace[")?;
        for (i, e) in self.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{e}")?;
        }
        write!(f, "]")
    }
}

impl fmt::Display for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return write!(f, "ε");
        }
        for (i, e) in self.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{e}")?;
        }
        Ok(())
    }
}

impl FromIterator<Event> for Trace {
    fn from_iter<I: IntoIterator<Item = Event>>(iter: I) -> Self {
        Trace::from_events(iter.into_iter().collect())
    }
}

impl From<Vec<Event>> for Trace {
    fn from(v: Vec<Event>) -> Self {
        Trace::from_events(v)
    }
}

/// An appendable trace under construction (used by the simulator's event
/// log and the exploration engine).
#[derive(Debug, Default, Clone)]
pub struct TraceBuilder {
    events: Vec<Event>,
}

impl TraceBuilder {
    /// A new empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append one event.
    pub fn push(&mut self, e: Event) {
        self.events.push(e);
    }

    /// Current length.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Is the builder empty?
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The events pushed so far, without copying (used by online
    /// monitoring loops that feed each new event incrementally).
    pub fn as_slice(&self) -> &[Event] {
        &self.events
    }

    /// A snapshot of the current contents as an immutable [`Trace`].
    pub fn snapshot(&self) -> Trace {
        Trace::from_events(self.events.clone())
    }

    /// Finish, consuming the builder.
    pub fn finish(self) -> Trace {
        Trace::from_events(self.events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Arg;
    use crate::ident::DataId;

    fn o(i: u32) -> ObjectId {
        ObjectId(i)
    }
    fn m(i: u32) -> MethodId {
        MethodId(i)
    }
    fn ev(c: u32, t: u32, mm: u32) -> Event {
        Event::call(o(c), o(t), m(mm))
    }

    fn sample() -> Trace {
        Trace::from_events(vec![ev(1, 2, 0), ev(3, 2, 1), ev(1, 2, 0), ev(2, 3, 2)])
    }

    #[test]
    fn empty_trace_properties() {
        let t = Trace::empty();
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
        assert_eq!(t.prefixes().count(), 1);
        assert_eq!(t.to_string(), "ε");
    }

    #[test]
    fn prefixes_are_shared_and_counted() {
        let t = sample();
        let ps: Vec<Trace> = t.prefixes().collect();
        assert_eq!(ps.len(), 5);
        assert_eq!(ps[0], Trace::empty());
        assert_eq!(ps[4], t);
        for p in &ps {
            assert!(p.is_prefix_of(&t));
        }
        assert_eq!(t.proper_prefixes().count(), 4);
    }

    #[test]
    fn prefix_is_clamped() {
        let t = sample();
        assert_eq!(t.prefix(100), t);
    }

    #[test]
    fn projection_keeps_only_matching_events() {
        let t = sample();
        let p = t.project(&|e: &Event| e.method == m(0));
        assert_eq!(p.len(), 2);
        assert!(p.iter().all(|e| e.method == m(0)));
    }

    #[test]
    fn deletion_is_complement_of_projection() {
        let t = sample();
        let s = |e: &Event| e.caller == o(1);
        let kept = t.project(&s);
        let dropped = t.delete(&s);
        assert_eq!(kept.len() + dropped.len(), t.len());
        assert_eq!(t.delete(&s), t.project(&crate::Complement(s)));
    }

    #[test]
    fn per_object_projection_matches_involvement() {
        let t = sample();
        let p = t.project_object(o(3));
        assert_eq!(p.len(), 2);
        assert!(p.iter().all(|e| e.involves(o(3))));
    }

    #[test]
    fn per_caller_projection() {
        let t = sample();
        assert_eq!(t.project_caller(o(1)).len(), 2);
        assert_eq!(t.project_caller(o(2)).len(), 1);
        assert_eq!(t.project_caller(o(9)).len(), 0);
    }

    #[test]
    fn method_projection_and_counting_agree() {
        let t = sample();
        assert_eq!(t.project_method(m(0)).len(), t.count_method(m(0)));
        assert_eq!(t.count_method(m(0)), 2);
        assert_eq!(t.count_method(m(7)), 0);
    }

    #[test]
    fn extended_appends_one_event() {
        let t = Trace::empty().extended(ev(1, 2, 0)).extended(ev(2, 1, 1));
        assert_eq!(t.len(), 2);
        assert_eq!(t.events()[1], ev(2, 1, 1));
    }

    #[test]
    fn concat_is_associative_on_samples() {
        let a = Trace::from_events(vec![ev(1, 2, 0)]);
        let b = Trace::from_events(vec![ev(2, 1, 1)]);
        let c = Trace::from_events(vec![ev(1, 3, 2)]);
        assert_eq!(a.concat(&b).concat(&c), a.concat(&b.concat(&c)));
    }

    #[test]
    fn objects_and_callers_are_sorted_unique() {
        let t = sample();
        assert_eq!(t.objects(), vec![o(1), o(2), o(3)]);
        assert_eq!(t.callers(), vec![o(1), o(2), o(3)]);
    }

    #[test]
    fn id_sets_stay_inline_for_few_distinct_ids() {
        // A long trace over few identities: the common case in bounded
        // exploration.  The set must not touch the heap.
        let mut events = Vec::new();
        for i in 0..200u32 {
            events.push(ev(1 + (i % 3), 4 + (i % 2), 0));
        }
        let t = Trace::from_events(events);
        let objs = t.objects();
        assert!(!objs.spilled(), "5 distinct ids must stay inline");
        assert_eq!(objs, vec![o(1), o(2), o(3), o(4), o(5)]);
        let callers = t.callers();
        assert!(!callers.spilled());
        assert_eq!(callers, vec![o(1), o(2), o(3)]);
    }

    #[test]
    fn id_set_spills_correctly_past_inline_capacity() {
        let n = (IdSet::INLINE_CAP as u32) * 3;
        // Insert in descending order to exercise sorted insertion.
        let set: IdSet = (0..n).rev().map(o).collect();
        assert!(set.spilled());
        assert_eq!(set.len(), n as usize);
        let expect: Vec<ObjectId> = (0..n).map(o).collect();
        assert_eq!(set, expect);
        // Duplicate insertion after the spill is still a no-op.
        let mut set = set;
        set.insert(o(1));
        assert_eq!(set.len(), n as usize);
        // Owning iteration yields ascending ids and honours size_hint.
        let iter = set.clone().into_iter();
        assert_eq!(iter.len(), n as usize);
        assert_eq!(iter.collect::<Vec<_>>(), expect);
    }

    #[test]
    fn id_set_slice_views_and_contains() {
        let t = sample();
        let objs = t.objects();
        assert!(objs.contains(&o(2)));
        assert!(!objs.contains(&o(9)));
        assert_eq!(objs.as_slice(), &[o(1), o(2), o(3)]);
        assert_eq!(objs.first(), Some(&o(1)));
        assert_eq!(objs.iter().count(), 3);
        assert_eq!(IdSet::default().len(), 0);
        assert!(IdSet::new().is_empty());
    }

    #[test]
    fn equality_ignores_shared_storage_capacity() {
        let t = sample();
        let p = t.prefix(2);
        let q = Trace::from_events(t.events()[..2].to_vec());
        assert_eq!(p, q);
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let mut h1 = DefaultHasher::new();
        let mut h2 = DefaultHasher::new();
        p.hash(&mut h1);
        q.hash(&mut h2);
        assert_eq!(h1.finish(), h2.finish());
    }

    #[test]
    fn builder_snapshot_and_finish() {
        let mut b = TraceBuilder::new();
        assert!(b.is_empty());
        b.push(ev(1, 2, 0));
        b.push(ev(2, 1, 1));
        let snap = b.snapshot();
        assert_eq!(snap.len(), 2);
        b.push(ev(1, 2, 0));
        assert_eq!(b.len(), 3);
        assert_eq!(snap.len(), 2, "snapshot must be unaffected by later pushes");
        assert_eq!(b.finish().len(), 3);
    }

    #[test]
    fn parameterised_events_compare_by_argument() {
        let a = Event::new(o(1), o(2), m(0), Arg::Data(DataId(1))).unwrap();
        let b = Event::new(o(1), o(2), m(0), Arg::Data(DataId(2))).unwrap();
        let t = Trace::from_events(vec![a, b]);
        assert_eq!(t.count_method(m(0)), 2);
        assert_ne!(a, b);
    }

    #[test]
    fn display_of_nonempty_trace() {
        let t = Trace::from_events(vec![ev(1, 2, 0)]);
        assert_eq!(t.to_string(), "<o#1,o#2,m#0>");
    }
}
