//! The granule partition of the event space.
//!
//! Relative to a frozen [`Universe`], each dimension of an event splits
//! into finitely many **granules** — pairwise-disjoint, non-empty blocks
//! whose union is the whole (infinite) dimension:
//!
//! * objects: one singleton granule per *declared* object, one infinite
//!   residue granule per object class (`C ∖ named(C)`), and the infinite
//!   anonymous environment `Obj ∖ (named ∪ ⋃classes)`;
//! * methods: one singleton per declared method, plus the infinite residue
//!   of undeclared methods (which the internal-event sets of Def. 3 range
//!   over);
//! * arguments: determined by the method granule — a declared parameterless
//!   method has the single argument granule [`ArgGranule::None`]; a
//!   declared method of signature `Data(C)` splits its arguments into the
//!   named values of `C` plus the residue `C ∖ named(C)`; the undeclared-
//!   method residue takes the opaque [`ArgGranule::AnyArg`].
//!
//! An [`EventGranule`] is a product of one granule per dimension, subject
//! to well-formedness (argument compatible with method; caller ≠ callee
//! pruning for singleton–singleton products).  Distinct well-formed event
//! granules denote disjoint, non-empty sets of concrete events, which is
//! what makes the Boolean algebra of [`crate::set::EventSet`] exact.

use crate::universe::{MethodSig, Role, Universe};
use pospec_trace::{Arg, ClassId, DataId, Event, MethodId, ObjectId};

/// A block of the object-dimension partition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ObjGranule {
    /// The singleton granule of a declared object.
    Named(ObjectId),
    /// The infinite residue of an object class: its undeclared members.
    ClassRest(ClassId),
    /// The infinite anonymous environment: objects in no class, not named.
    Anon,
}

impl ObjGranule {
    /// Is this granule an infinite set?
    pub fn is_infinite(self) -> bool {
        !matches!(self, ObjGranule::Named(_))
    }

    /// The concrete inhabitants available for enumeration: the object
    /// itself for a singleton, the declared witnesses for a residue.
    pub fn inhabitants(self, u: &Universe) -> Vec<ObjectId> {
        match self {
            ObjGranule::Named(o) => vec![o],
            ObjGranule::ClassRest(c) => u.class_witnesses(c).collect(),
            ObjGranule::Anon => u.anon_witnesses().collect(),
        }
    }

    /// The granule a concrete object identity inhabits.
    pub fn of(u: &Universe, o: ObjectId) -> ObjGranule {
        match u.object_role(o) {
            Role::Declared => ObjGranule::Named(o),
            Role::Witness => match u.class_of_object(o) {
                Some(c) => ObjGranule::ClassRest(c),
                None => ObjGranule::Anon,
            },
        }
    }

    /// Render with universe names.
    pub fn display(self, u: &Universe) -> String {
        match self {
            ObjGranule::Named(o) => u.object_name(o).to_string(),
            ObjGranule::ClassRest(c) => format!("{}∖named", u.class_name(c)),
            ObjGranule::Anon => "⟨anon⟩".to_string(),
        }
    }
}

/// A block of the method-dimension partition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum MethodGranule {
    /// The singleton granule of a declared method.
    Named(MethodId),
    /// The infinite residue of undeclared methods.
    Other,
}

impl MethodGranule {
    /// Is this granule an infinite set?
    pub fn is_infinite(self) -> bool {
        matches!(self, MethodGranule::Other)
    }

    /// Concrete inhabitants for enumeration.
    pub fn inhabitants(self, u: &Universe) -> Vec<MethodId> {
        match self {
            MethodGranule::Named(m) => vec![m],
            MethodGranule::Other => u.method_witnesses().collect(),
        }
    }

    /// The granule a concrete method inhabits.
    pub fn of(u: &Universe, m: MethodId) -> MethodGranule {
        match u.method_role(m) {
            Role::Declared => MethodGranule::Named(m),
            Role::Witness => MethodGranule::Other,
        }
    }

    /// Render with universe names.
    pub fn display(self, u: &Universe) -> String {
        match self {
            MethodGranule::Named(m) => u.method_name(m).to_string(),
            MethodGranule::Other => "⟨mtd⟩".to_string(),
        }
    }
}

/// A block of the argument-dimension partition (relative to a method
/// granule).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ArgGranule {
    /// The unique empty argument of a parameterless method.
    None,
    /// The singleton granule of a named data value.
    NamedData(DataId),
    /// The infinite residue of a data class: its unnamed values.
    DataRest(ClassId),
    /// The opaque argument dimension of undeclared methods.
    AnyArg,
}

impl ArgGranule {
    /// Is this granule an infinite set?
    pub fn is_infinite(self) -> bool {
        matches!(self, ArgGranule::DataRest(_) | ArgGranule::AnyArg)
    }

    /// Concrete inhabitants for enumeration.  `AnyArg` enumerates as the
    /// empty argument because the only concrete inhabitants of the
    /// undeclared-method residue are the (parameterless) witness methods.
    pub fn inhabitants(self, u: &Universe) -> Vec<Arg> {
        match self {
            ArgGranule::None => vec![Arg::None],
            ArgGranule::NamedData(d) => vec![Arg::Data(d)],
            ArgGranule::DataRest(c) => u.data_witnesses(c).map(Arg::Data).collect(),
            ArgGranule::AnyArg => vec![Arg::None],
        }
    }

    /// Render with universe names.
    pub fn display(self, u: &Universe) -> String {
        match self {
            ArgGranule::None => String::new(),
            ArgGranule::NamedData(d) => format!("({})", u.data_name(d)),
            ArgGranule::DataRest(c) => format!("({}∖named)", u.class_name(c)),
            ArgGranule::AnyArg => "(⋆)".to_string(),
        }
    }
}

/// One block of the event-space partition: a product of granules.
///
/// Denotes the set of concrete events `⟨a, b, m(v)⟩` with `a` in the caller
/// granule, `b` in the callee granule, `a ≠ b`, `m` in the method granule
/// and `v` in the argument granule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EventGranule {
    /// The caller block.
    pub caller: ObjGranule,
    /// The callee block.
    pub callee: ObjGranule,
    /// The method block.
    pub method: MethodGranule,
    /// The argument block.
    pub arg: ArgGranule,
}

impl EventGranule {
    /// Construct a granule without validity checking.
    pub fn new(
        caller: ObjGranule,
        callee: ObjGranule,
        method: MethodGranule,
        arg: ArgGranule,
    ) -> Self {
        EventGranule { caller, callee, method, arg }
    }

    /// The granule that a concrete event inhabits.
    pub fn of_event(u: &Universe, e: &Event) -> EventGranule {
        let method = MethodGranule::of(u, e.method);
        let arg = match method {
            MethodGranule::Other => ArgGranule::AnyArg,
            MethodGranule::Named(m) => match (u.method_sig(m), e.arg) {
                (MethodSig::None, _) => ArgGranule::None,
                (MethodSig::Data(c), Arg::Data(d)) => match u.data_role(d) {
                    Role::Declared => ArgGranule::NamedData(d),
                    Role::Witness => ArgGranule::DataRest(c),
                },
                // A parameterised method used without argument: treat the
                // missing argument as an unnamed value of its class.
                (MethodSig::Data(c), Arg::None) => ArgGranule::DataRest(c),
            },
        };
        EventGranule {
            caller: ObjGranule::of(u, e.caller),
            callee: ObjGranule::of(u, e.callee),
            method,
            arg,
        }
    }

    /// Well-formedness: non-empty denotation and method/argument
    /// compatibility.  Only well-formed granules may enter an
    /// [`crate::set::EventSet`].
    pub fn is_valid(&self, u: &Universe) -> bool {
        // A singleton caller equal to a singleton callee denotes self-calls
        // only, which are not observable events: empty.
        if let (ObjGranule::Named(a), ObjGranule::Named(b)) = (self.caller, self.callee) {
            if a == b {
                return false;
            }
        }
        match self.method {
            MethodGranule::Other => self.arg == ArgGranule::AnyArg,
            MethodGranule::Named(m) => match u.method_sig(m) {
                MethodSig::None => self.arg == ArgGranule::None,
                MethodSig::Data(c) => match self.arg {
                    ArgGranule::NamedData(d) => u.class_of_data(d) == c,
                    ArgGranule::DataRest(c2) => c2 == c,
                    _ => false,
                },
            },
        }
    }

    /// Is the denoted set infinite (any coordinate infinite)?
    pub fn is_infinite(&self) -> bool {
        self.caller.is_infinite()
            || self.callee.is_infinite()
            || self.method.is_infinite()
            || self.arg.is_infinite()
    }

    /// Enumerate the concrete events of this granule realisable with the
    /// universe's witnesses (exact for singleton granules, sampled for
    /// infinite ones).  Self-call combinations are skipped.
    pub fn concrete_events(&self, u: &Universe) -> Vec<Event> {
        let callers = self.caller.inhabitants(u);
        let callees = self.callee.inhabitants(u);
        let methods = self.method.inhabitants(u);
        let args = self.arg.inhabitants(u);
        let mut out = Vec::new();
        for &a in &callers {
            for &b in &callees {
                if a == b {
                    continue;
                }
                for &m in &methods {
                    for &v in &args {
                        out.push(Event { caller: a, callee: b, method: m, arg: v });
                    }
                }
            }
        }
        out
    }

    /// Does the granule contain the concrete event?
    pub fn contains(&self, u: &Universe, e: &Event) -> bool {
        *self == EventGranule::of_event(u, e)
    }

    /// Does the granule mention (as caller or callee) the *named* object?
    pub fn involves_named(&self, o: ObjectId) -> bool {
        self.caller == ObjGranule::Named(o) || self.callee == ObjGranule::Named(o)
    }

    /// Render with universe names, in the paper's `⟨caller,callee,m⟩` shape.
    pub fn display(&self, u: &Universe) -> String {
        format!(
            "⟨{},{},{}{}⟩",
            self.caller.display(u),
            self.callee.display(u),
            self.method.display(u),
            self.arg.display(u),
        )
    }
}

/// Every object granule of the universe: singletons, class residues, anon.
pub fn all_obj_granules(u: &Universe) -> Vec<ObjGranule> {
    let mut v: Vec<ObjGranule> = u.declared_objects().map(ObjGranule::Named).collect();
    v.extend(u.object_classes().map(ObjGranule::ClassRest));
    v.push(ObjGranule::Anon);
    v
}

/// Every compatible (method, argument) granule pair of the universe.
pub fn all_method_arg_granules(u: &Universe) -> Vec<(MethodGranule, ArgGranule)> {
    let mut v = Vec::new();
    for m in u.declared_methods() {
        match u.method_sig(m) {
            MethodSig::None => v.push((MethodGranule::Named(m), ArgGranule::None)),
            MethodSig::Data(c) => {
                for d in u.declared_data_in(c) {
                    v.push((MethodGranule::Named(m), ArgGranule::NamedData(d)));
                }
                v.push((MethodGranule::Named(m), ArgGranule::DataRest(c)));
            }
        }
    }
    v.push((MethodGranule::Other, ArgGranule::AnyArg));
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::universe::UniverseBuilder;
    use std::sync::Arc;

    fn small_universe() -> (Arc<Universe>, ObjectId, ObjectId, ClassId, ClassId, MethodId, MethodId)
    {
        let mut b = UniverseBuilder::new();
        let objects = b.object_class("Objects").unwrap();
        let data = b.data_class("Data").unwrap();
        let o = b.object("o").unwrap();
        let c = b.object_in("c", objects).unwrap();
        let w = b.method_with("W", data).unwrap();
        let ow = b.method("OW").unwrap();
        b.class_witnesses(objects, 2).unwrap();
        b.anon_witnesses(1).unwrap();
        b.method_witnesses(1).unwrap();
        b.data_witnesses(data, 2).unwrap();
        (b.freeze(), o, c, objects, data, w, ow)
    }

    #[test]
    fn declared_objects_map_to_singletons_witnesses_to_residues() {
        let (u, o, c, objects, _, _, _) = small_universe();
        assert_eq!(ObjGranule::of(&u, o), ObjGranule::Named(o));
        assert_eq!(ObjGranule::of(&u, c), ObjGranule::Named(c));
        let w = u.class_witnesses(objects).next().unwrap();
        assert_eq!(ObjGranule::of(&u, w), ObjGranule::ClassRest(objects));
        let a = u.anon_witnesses().next().unwrap();
        assert_eq!(ObjGranule::of(&u, a), ObjGranule::Anon);
    }

    #[test]
    fn granule_infinity() {
        let (u, o, _, objects, _, _, _) = small_universe();
        let _ = &u;
        assert!(!ObjGranule::Named(o).is_infinite());
        assert!(ObjGranule::ClassRest(objects).is_infinite());
        assert!(ObjGranule::Anon.is_infinite());
        assert!(MethodGranule::Other.is_infinite());
        assert!(ArgGranule::AnyArg.is_infinite());
        assert!(!ArgGranule::None.is_infinite());
    }

    #[test]
    fn validity_rejects_selfcall_singletons_and_bad_args() {
        let (u, o, c, objects, data, w, ow) = small_universe();
        let g = EventGranule::new(
            ObjGranule::Named(o),
            ObjGranule::Named(o),
            MethodGranule::Named(ow),
            ArgGranule::None,
        );
        assert!(!g.is_valid(&u), "named self-call granule is empty");

        let same_residue = EventGranule::new(
            ObjGranule::ClassRest(objects),
            ObjGranule::ClassRest(objects),
            MethodGranule::Named(ow),
            ArgGranule::None,
        );
        assert!(same_residue.is_valid(&u), "infinite residue self-pair is non-empty");

        let wrong_arg = EventGranule::new(
            ObjGranule::Named(c),
            ObjGranule::Named(o),
            MethodGranule::Named(ow),
            ArgGranule::DataRest(data),
        );
        assert!(!wrong_arg.is_valid(&u), "parameterless method cannot carry data");

        let good = EventGranule::new(
            ObjGranule::Named(c),
            ObjGranule::Named(o),
            MethodGranule::Named(w),
            ArgGranule::DataRest(data),
        );
        assert!(good.is_valid(&u));

        let other_bad = EventGranule::new(
            ObjGranule::Named(c),
            ObjGranule::Named(o),
            MethodGranule::Other,
            ArgGranule::None,
        );
        assert!(!other_bad.is_valid(&u), "undeclared methods take AnyArg only");
    }

    #[test]
    fn of_event_roundtrips_membership() {
        let (u, o, c, objects, data, w, ow) = small_universe();
        let wit = u.class_witnesses(objects).next().unwrap();
        let dwit = u.data_witnesses(data).next().unwrap();
        let e1 = Event::call(c, o, ow);
        let e2 = Event::call_with(wit, o, w, dwit);
        for e in [e1, e2] {
            let g = EventGranule::of_event(&u, &e);
            assert!(g.is_valid(&u));
            assert!(g.contains(&u, &e));
        }
        let g1 = EventGranule::of_event(&u, &e1);
        assert!(!g1.contains(&u, &e2));
    }

    #[test]
    fn concrete_events_skip_self_pairs_and_respect_witnesses() {
        let (u, o, _, objects, _, _, ow) = small_universe();
        let g = EventGranule::new(
            ObjGranule::ClassRest(objects),
            ObjGranule::ClassRest(objects),
            MethodGranule::Named(ow),
            ArgGranule::None,
        );
        let evs = g.concrete_events(&u);
        // Two class witnesses => 2*2 - 2 self pairs = 2 events.
        assert_eq!(evs.len(), 2);
        for e in &evs {
            assert_ne!(e.caller, e.callee);
        }
        let g2 = EventGranule::new(
            ObjGranule::Named(o),
            ObjGranule::ClassRest(objects),
            MethodGranule::Named(ow),
            ArgGranule::None,
        );
        assert_eq!(g2.concrete_events(&u).len(), 2);
    }

    #[test]
    fn granule_space_enumerations_cover_all_blocks() {
        let (u, _, _, objects, data, _, _) = small_universe();
        let objs = all_obj_granules(&u);
        // 2 declared objects + 1 class residue + anon = 4.
        assert_eq!(objs.len(), 4);
        assert!(objs.contains(&ObjGranule::ClassRest(objects)));
        assert!(objs.contains(&ObjGranule::Anon));

        let mas = all_method_arg_granules(&u);
        // W: (no named data values) 1 residue pair; OW: 1 pair; Other: 1.
        assert_eq!(mas.len(), 3);
        assert!(mas.contains(&(MethodGranule::Other, ArgGranule::AnyArg)));
        assert!(mas.iter().any(|(_, a)| *a == ArgGranule::DataRest(data)));
    }

    #[test]
    fn every_enumerated_granule_is_valid() {
        let (u, _, _, _, _, _, _) = small_universe();
        for caller in all_obj_granules(&u) {
            for callee in all_obj_granules(&u) {
                for (m, a) in all_method_arg_granules(&u) {
                    let g = EventGranule::new(caller, callee, m, a);
                    let both_named_same = matches!(
                        (caller, callee),
                        (ObjGranule::Named(x), ObjGranule::Named(y)) if x == y
                    );
                    assert_eq!(g.is_valid(&u), !both_named_same);
                }
            }
        }
    }

    #[test]
    fn display_is_readable() {
        let (u, o, c, _, _, _, ow) = small_universe();
        let g = EventGranule::new(
            ObjGranule::Named(c),
            ObjGranule::Named(o),
            MethodGranule::Named(ow),
            ArgGranule::None,
        );
        assert_eq!(g.display(&u), "⟨c,o,OW⟩");
    }
}
