//! Exact symbolic event sets as canonical granule sets.
//!
//! An [`EventSet`] denotes a (usually infinite) set of concrete
//! communication events as a finite union of [`EventGranule`]s.  Because
//! the granules of a frozen universe partition the event space, the
//! Boolean operations, the subset test, the emptiness test and the
//! infinity test below are all **exact** — no approximation is involved.
//! This is what makes the side conditions of the paper (Def. 1
//! well-formedness, Def. 2 condition 2, Def. 10 composability, Def. 14
//! properness) decidable in this implementation.

use crate::granule::{all_method_arg_granules, all_obj_granules, EventGranule, ObjGranule};
use crate::universe::Universe;
use pospec_trace::{Event, EventFilter, ObjectId};
use std::collections::BTreeSet;
use std::fmt;
use std::sync::Arc;

/// A symbolic set of communication events over a frozen universe.
#[derive(Clone)]
pub struct EventSet {
    universe: Arc<Universe>,
    granules: BTreeSet<EventGranule>,
}

impl EventSet {
    /// The empty set over `u`.
    pub fn empty(u: &Arc<Universe>) -> Self {
        EventSet { universe: Arc::clone(u), granules: BTreeSet::new() }
    }

    /// The set of **all** observable events over `u` (every well-formed
    /// granule): the union of `α_o` over all objects, including the open
    /// environment's events among themselves.
    pub fn universal(u: &Arc<Universe>) -> Self {
        let mut granules = BTreeSet::new();
        for caller in all_obj_granules(u) {
            for callee in all_obj_granules(u) {
                for (m, a) in all_method_arg_granules(u) {
                    let g = EventGranule::new(caller, callee, m, a);
                    if g.is_valid(u) {
                        granules.insert(g);
                    }
                }
            }
        }
        EventSet { universe: Arc::clone(u), granules }
    }

    /// Build from granules, dropping any that are not well-formed.
    pub fn from_granules(
        u: &Arc<Universe>,
        granules: impl IntoIterator<Item = EventGranule>,
    ) -> Self {
        let granules = granules.into_iter().filter(|g| g.is_valid(u)).collect();
        EventSet { universe: Arc::clone(u), granules }
    }

    /// The universe this set lives over.
    pub fn universe(&self) -> &Arc<Universe> {
        &self.universe
    }

    fn assert_same_universe(&self, other: &EventSet) {
        assert_eq!(
            self.universe.uid(),
            other.universe.uid(),
            "event sets from different universes cannot be combined"
        );
    }

    /// Number of granules (not of events!).
    pub fn granule_count(&self) -> usize {
        self.granules.len()
    }

    /// Iterate over the granules.
    pub fn granules(&self) -> impl Iterator<Item = &EventGranule> + '_ {
        self.granules.iter()
    }

    /// Is the denoted set empty?
    pub fn is_empty(&self) -> bool {
        self.granules.is_empty()
    }

    /// Is the denoted set infinite?  (Def. 1 requires specification
    /// alphabets to be infinite.)
    pub fn is_infinite(&self) -> bool {
        self.granules.iter().any(|g| g.is_infinite())
    }

    /// `self ∪ other`.
    pub fn union(&self, other: &EventSet) -> EventSet {
        self.assert_same_universe(other);
        EventSet {
            universe: Arc::clone(&self.universe),
            granules: self.granules.union(&other.granules).copied().collect(),
        }
    }

    /// `self ∩ other`.
    pub fn intersect(&self, other: &EventSet) -> EventSet {
        self.assert_same_universe(other);
        EventSet {
            universe: Arc::clone(&self.universe),
            granules: self.granules.intersection(&other.granules).copied().collect(),
        }
    }

    /// `self ∖ other`.
    pub fn difference(&self, other: &EventSet) -> EventSet {
        self.assert_same_universe(other);
        EventSet {
            universe: Arc::clone(&self.universe),
            granules: self.granules.difference(&other.granules).copied().collect(),
        }
    }

    /// The complement within the universal event set.
    pub fn complement(&self) -> EventSet {
        EventSet::universal(&self.universe).difference(self)
    }

    /// `self ⊆ other` — exact.
    pub fn is_subset(&self, other: &EventSet) -> bool {
        self.assert_same_universe(other);
        self.granules.is_subset(&other.granules)
    }

    /// `self ∩ other = ∅` — exact.
    pub fn is_disjoint(&self, other: &EventSet) -> bool {
        self.assert_same_universe(other);
        self.granules.is_disjoint(&other.granules)
    }

    /// Set equality — exact.
    pub fn set_eq(&self, other: &EventSet) -> bool {
        self.assert_same_universe(other);
        self.granules == other.granules
    }

    /// Does the set contain the concrete event?
    pub fn contains(&self, e: &Event) -> bool {
        self.granules.contains(&EventGranule::of_event(&self.universe, e))
    }

    /// Does any granule of the set involve `o` as a *named* endpoint?
    pub fn mentions_object(&self, o: ObjectId) -> bool {
        self.granules.iter().any(|g| g.involves_named(o))
    }

    /// The named objects occurring as endpoints of granules in the set.
    pub fn named_endpoints(&self) -> BTreeSet<ObjectId> {
        let mut out = BTreeSet::new();
        for g in &self.granules {
            if let ObjGranule::Named(o) = g.caller {
                out.insert(o);
            }
            if let ObjGranule::Named(o) = g.callee {
                out.insert(o);
            }
        }
        out
    }

    /// Enumerate the concrete events realisable with the universe's
    /// witnesses.  Exact for finite sets; a finite sample for infinite
    /// ones.  The result is sorted and duplicate-free.
    pub fn enumerate_concrete(&self) -> Vec<Event> {
        let mut out: Vec<Event> =
            self.granules.iter().flat_map(|g| g.concrete_events(&self.universe)).collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Keep only the granules satisfying a predicate.
    pub fn filter_granules(&self, mut keep: impl FnMut(&EventGranule) -> bool) -> EventSet {
        EventSet {
            universe: Arc::clone(&self.universe),
            granules: self.granules.iter().filter(|g| keep(g)).copied().collect(),
        }
    }

    /// Render with universe names.
    pub fn display(&self) -> String {
        let items: Vec<String> = self.granules.iter().map(|g| g.display(&self.universe)).collect();
        format!("{{{}}}", items.join(", "))
    }
}

impl PartialEq for EventSet {
    fn eq(&self, other: &Self) -> bool {
        self.universe.uid() == other.universe.uid() && self.granules == other.granules
    }
}
impl Eq for EventSet {}

impl fmt::Debug for EventSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "EventSet{}", self.display())
    }
}

impl EventFilter for EventSet {
    fn contains_event(&self, e: &Event) -> bool {
        self.contains(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::granule::{ArgGranule, MethodGranule, ObjGranule};
    use crate::universe::UniverseBuilder;
    use pospec_trace::MethodId;

    struct Fix {
        u: Arc<Universe>,
        o: ObjectId,
        c: ObjectId,
        objects: pospec_trace::ClassId,
        r: MethodId,
        ow: MethodId,
    }

    fn fix() -> Fix {
        let mut b = UniverseBuilder::new();
        let objects = b.object_class("Objects").unwrap();
        let data = b.data_class("Data").unwrap();
        let o = b.object("o").unwrap();
        let c = b.object_in("c", objects).unwrap();
        let r = b.method_with("R", data).unwrap();
        let ow = b.method("OW").unwrap();
        b.class_witnesses(objects, 2).unwrap();
        b.anon_witnesses(1).unwrap();
        b.method_witnesses(1).unwrap();
        b.data_witnesses(data, 1).unwrap();
        Fix { u: b.freeze(), o, c, objects, r, ow }
    }

    fn calls_to_o(f: &Fix) -> EventSet {
        // {⟨x, o, OW⟩ | x ∈ Objects} — including the named member c.
        EventSet::from_granules(
            &f.u,
            [
                EventGranule::new(
                    ObjGranule::ClassRest(f.objects),
                    ObjGranule::Named(f.o),
                    MethodGranule::Named(f.ow),
                    ArgGranule::None,
                ),
                EventGranule::new(
                    ObjGranule::Named(f.c),
                    ObjGranule::Named(f.o),
                    MethodGranule::Named(f.ow),
                    ArgGranule::None,
                ),
            ],
        )
    }

    #[test]
    fn empty_and_universal() {
        let f = fix();
        let e = EventSet::empty(&f.u);
        let uni = EventSet::universal(&f.u);
        assert!(e.is_empty());
        assert!(!uni.is_empty());
        assert!(uni.is_infinite());
        assert!(e.is_subset(&uni));
        assert!(uni.complement().is_empty());
        assert!(e.complement().set_eq(&uni));
    }

    #[test]
    fn invalid_granules_are_pruned_on_construction() {
        let f = fix();
        let s = EventSet::from_granules(
            &f.u,
            [EventGranule::new(
                ObjGranule::Named(f.o),
                ObjGranule::Named(f.o),
                MethodGranule::Named(f.ow),
                ArgGranule::None,
            )],
        );
        assert!(s.is_empty());
    }

    #[test]
    fn boolean_algebra_laws_on_concrete_sets() {
        let f = fix();
        let a = calls_to_o(&f);
        let uni = EventSet::universal(&f.u);
        let b = uni.filter_granules(|g| g.callee == ObjGranule::Named(f.o));
        assert!(a.is_subset(&b));
        assert!(a.intersect(&b).set_eq(&a));
        assert!(a.union(&b).set_eq(&b));
        assert!(a.difference(&b).is_empty());
        assert!(!b.difference(&a).is_empty());
        // De Morgan on granule sets.
        assert!(a.union(&b).complement().set_eq(&a.complement().intersect(&b.complement())));
    }

    #[test]
    fn membership_follows_granules() {
        let f = fix();
        let s = calls_to_o(&f);
        let wit = f.u.class_witnesses(f.objects).next().unwrap();
        assert!(s.contains(&Event::call(wit, f.o, f.ow)));
        assert!(s.contains(&Event::call(f.c, f.o, f.ow)));
        // Anonymous callers are not in Objects.
        let anon = f.u.anon_witnesses().next().unwrap();
        assert!(!s.contains(&Event::call(anon, f.o, f.ow)));
        // Wrong direction.
        assert!(!s.contains(&Event::call(f.o, f.c, f.ow)));
        // Wrong method.
        let dwit = f.u.data_witnesses(f.u.class_by_name("Data").unwrap()).next().unwrap();
        assert!(!s.contains(&Event::call_with(f.c, f.o, f.r, dwit)));
    }

    #[test]
    fn infinity_detection() {
        let f = fix();
        let s = calls_to_o(&f);
        assert!(s.is_infinite(), "Objects residue makes it infinite");
        let finite = EventSet::from_granules(
            &f.u,
            [EventGranule::new(
                ObjGranule::Named(f.c),
                ObjGranule::Named(f.o),
                MethodGranule::Named(f.ow),
                ArgGranule::None,
            )],
        );
        assert!(!finite.is_infinite());
    }

    #[test]
    fn enumeration_uses_witnesses() {
        let f = fix();
        let s = calls_to_o(&f);
        let evs = s.enumerate_concrete();
        // 2 class witnesses + named c as callers, all calling o.
        assert_eq!(evs.len(), 3);
        for e in &evs {
            assert_eq!(e.callee, f.o);
            assert_eq!(e.method, f.ow);
        }
    }

    #[test]
    fn named_endpoints_and_mentions() {
        let f = fix();
        let s = calls_to_o(&f);
        assert!(s.mentions_object(f.o));
        assert!(s.mentions_object(f.c));
        let eps = s.named_endpoints();
        assert!(eps.contains(&f.o) && eps.contains(&f.c));
        assert_eq!(eps.len(), 2);
    }

    #[test]
    #[should_panic(expected = "different universes")]
    fn cross_universe_ops_panic() {
        let f1 = fix();
        let f2 = fix();
        let a = EventSet::empty(&f1.u);
        let b = EventSet::empty(&f2.u);
        let _ = a.union(&b);
    }

    #[test]
    fn event_filter_impl_agrees_with_contains() {
        let f = fix();
        let s = calls_to_o(&f);
        let e = Event::call(f.c, f.o, f.ow);
        assert_eq!(s.contains(&e), pospec_trace::EventFilter::contains_event(&s, &e));
    }
}
