//! Symbolic alphabets over infinite universes of objects, methods and data.
//!
//! The formalism of Johnsen & Owe (2002) works with **infinite** alphabets:
//! Def. 1 requires the alphabet of every specification to be an infinite set
//! of events, because the communication environment of an open system is
//! unbounded.  Internal-event sets such as `I(o₁,o₂)` (Def. 3) range over
//! *all* methods, including methods no specification ever names ("we hide
//! more than we can see").  A faithful executable rendition therefore needs
//! a representation of infinite event sets on which union, difference,
//! intersection, subset, emptiness and infinity are **exact and decidable**.
//!
//! This crate provides that representation:
//!
//! * a frozen [`Universe`] declares the named objects,
//!   disjoint (possibly infinite) object classes, methods with signatures,
//!   and data classes that a family of specifications may mention, plus
//!   *witness* inhabitants of the infinite residues used for finitization;
//! * the universe induces a finite **granule partition** of each dimension
//!   (module [`granule`]): every named object is a singleton granule, every
//!   infinite class contributes a residue granule "class minus its named
//!   members", and the anonymous environment `Obj ∖ (named ∪ classes)` is
//!   one more infinite granule — likewise for methods and data;
//! * an [`EventSet`] is a canonical finite set of *event
//!   granules* (caller × callee × method × argument), closed under the exact
//!   Boolean algebra (module [`set`]);
//! * module [`internal`] constructs the paper's derived sets: `α_o`,
//!   `I(o,o′)`, `I(S)`, `I(S₁,S₂)` and the Def.-1 admissible alphabet of an
//!   object set.
//!
//! Because distinct granules denote disjoint non-empty sets of concrete
//! events, the granule algebra is not an approximation: it computes with
//! exactly the sets the paper manipulates.

pub mod display;
pub mod granule;
pub mod internal;
pub mod pattern;
pub mod set;
pub mod universe;

pub use display::{display_event, display_trace, EventDisplay, TraceDisplay};
pub use granule::{ArgGranule, EventGranule, MethodGranule, ObjGranule};
pub use internal::{
    admissible_alphabet, alpha_object, alphabet_is_admissible, internal_between, internal_of_pair,
    internal_of_set,
};
pub use pattern::{ArgSpec, EventPattern, ObjSpec};
pub use set::EventSet;
pub use universe::{MethodSig, Universe, UniverseBuilder, UniverseError};
