//! The frozen symbol universe underlying a family of specifications.
//!
//! A [`Universe`] declares, once and for all, the *named* symbols a family
//! of specifications may mention: object identities, infinite object
//! classes (the paper's sorts like `Objects ⊆ Obj`), method names with
//! their signatures, data classes and named data values.  The object,
//! method and data spaces themselves remain **infinite**: beyond the
//! declared symbols there are always "fresh" objects (the open
//! environment), undeclared methods (ranged over by the internal-event
//! sets of Def. 3) and further data values.
//!
//! Freezing matters: the granule partition of `pospec_alphabet::granule`
//! is computed relative to the declared symbols, so all [`EventSet`](crate::set::EventSet)s
//! built against the same frozen universe are directly
//! comparable.  Specifications that must be *related* (refined, composed)
//! therefore share one universe — this mirrors the paper, where all
//! specifications implicitly live over the same `Obj`/`Mtd`/`Data` sorts.
//!
//! **Witnesses.**  For model checking we must exhibit concrete inhabitants
//! of the infinite residues ("some object of `Objects` other than the named
//! ones", "some fresh method", …).  A universe may declare *witness*
//! symbols for this purpose.  Witnesses are deliberately excluded from the
//! granule partition — a witness of class `C` inhabits the residue granule
//! `C ∖ named(C)` rather than forming a singleton granule — so adding
//! witnesses never changes the meaning of any symbolic set, only the
//! ability to enumerate samples from it.

use pospec_trace::{ClassId, DataId, MethodId, ObjectId};
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Whether a class classifies objects or data values.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClassKind {
    /// A sort of object identities (e.g. the paper's `Objects`).
    Object,
    /// A sort of data values (e.g. the paper's `Data`).
    Data,
}

/// How an object (or data value / method) participates in the partition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// A declared, named symbol: forms its own singleton granule.
    Declared,
    /// A witness inhabitant of an infinite residue granule; used only for
    /// finitization/enumeration, invisible to the symbolic algebra.
    Witness,
}

#[derive(Debug, Clone)]
pub(crate) struct ObjectDef {
    pub name: String,
    pub class: Option<ClassId>,
    pub role: Role,
}

#[derive(Debug, Clone)]
pub(crate) struct ClassDef {
    pub name: String,
    pub kind: ClassKind,
}

/// The signature of a method: either parameterless or carrying one value
/// of a declared data class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MethodSig {
    /// No parameter (e.g. `OW`, `CW`, `OK`).
    None,
    /// One parameter drawn from the given data class (e.g. `W(d)`,
    /// `d ∈ Data`).
    Data(ClassId),
}

#[derive(Debug, Clone)]
pub(crate) struct MethodDef {
    pub name: String,
    pub sig: MethodSig,
    pub role: Role,
}

#[derive(Debug, Clone)]
pub(crate) struct DataDef {
    pub name: String,
    pub class: ClassId,
    pub role: Role,
}

/// Errors raised while declaring symbols.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UniverseError {
    /// The name is already taken within its namespace.
    DuplicateName(String),
    /// A class id was used with the wrong kind (object vs data).
    WrongClassKind { class: String, expected: ClassKind },
    /// An unknown class id.
    UnknownClass(ClassId),
}

impl fmt::Display for UniverseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UniverseError::DuplicateName(n) => write!(f, "duplicate name `{n}`"),
            UniverseError::WrongClassKind { class, expected } => {
                write!(f, "class `{class}` is not a {expected:?} class")
            }
            UniverseError::UnknownClass(c) => write!(f, "unknown class {c}"),
        }
    }
}

impl std::error::Error for UniverseError {}

static UNIVERSE_COUNTER: AtomicU64 = AtomicU64::new(0);

/// A frozen symbol table; see the module documentation.
///
/// Constructed via [`UniverseBuilder`]; shared as `Arc<Universe>` by every
/// event set and specification built over it.
#[derive(Debug)]
pub struct Universe {
    /// Unique identity used to reject cross-universe set operations.
    uid: u64,
    objects: Vec<ObjectDef>,
    classes: Vec<ClassDef>,
    methods: Vec<MethodDef>,
    data: Vec<DataDef>,
    object_names: HashMap<String, ObjectId>,
    class_names: HashMap<String, ClassId>,
    method_names: HashMap<String, MethodId>,
    data_names: HashMap<String, DataId>,
}

impl Universe {
    /// The unique identity of this universe instance.
    pub fn uid(&self) -> u64 {
        self.uid
    }

    /// A canonical, process-independent rendering of every declared
    /// symbol, in declaration order only — no hash-map iteration, no
    /// addresses, no per-instance `uid`.  Two universes built by the
    /// same sequence of declarations produce byte-identical text in any
    /// process; the persistent automaton cache keys on a hash of it.
    pub fn canonical_description(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for d in &self.objects {
            let _ = write!(out, "o:{}:{:?}:{:?};", d.name, d.class, d.role);
        }
        for c in &self.classes {
            let _ = write!(out, "c:{}:{:?};", c.name, c.kind);
        }
        for m in &self.methods {
            let _ = write!(out, "m:{}:{:?}:{:?};", m.name, m.sig, m.role);
        }
        for d in &self.data {
            let _ = write!(out, "d:{}:{:?}:{:?};", d.name, d.class, d.role);
        }
        out
    }

    /// All declared (non-witness) object identities.
    pub fn declared_objects(&self) -> impl Iterator<Item = ObjectId> + '_ {
        self.objects
            .iter()
            .enumerate()
            .filter(|(_, d)| d.role == Role::Declared)
            .map(|(i, _)| ObjectId::from_index(i))
    }

    /// All object classes.
    pub fn object_classes(&self) -> impl Iterator<Item = ClassId> + '_ {
        self.classes
            .iter()
            .enumerate()
            .filter(|(_, d)| d.kind == ClassKind::Object)
            .map(|(i, _)| ClassId::from_index(i))
    }

    /// All data classes.
    pub fn data_classes(&self) -> impl Iterator<Item = ClassId> + '_ {
        self.classes
            .iter()
            .enumerate()
            .filter(|(_, d)| d.kind == ClassKind::Data)
            .map(|(i, _)| ClassId::from_index(i))
    }

    /// All declared (non-witness) method names.
    pub fn declared_methods(&self) -> impl Iterator<Item = MethodId> + '_ {
        self.methods
            .iter()
            .enumerate()
            .filter(|(_, d)| d.role == Role::Declared)
            .map(|(i, _)| MethodId::from_index(i))
    }

    /// All declared data values of a class.
    pub fn declared_data_in(&self, class: ClassId) -> impl Iterator<Item = DataId> + '_ {
        self.data
            .iter()
            .enumerate()
            .filter(move |(_, d)| d.role == Role::Declared && d.class == class)
            .map(|(i, _)| DataId::from_index(i))
    }

    /// The declared members of an object class (witnesses excluded).
    pub fn declared_members(&self, class: ClassId) -> impl Iterator<Item = ObjectId> + '_ {
        self.objects
            .iter()
            .enumerate()
            .filter(move |(_, d)| d.role == Role::Declared && d.class == Some(class))
            .map(|(i, _)| ObjectId::from_index(i))
    }

    /// The witness inhabitants of an object class residue.
    pub fn class_witnesses(&self, class: ClassId) -> impl Iterator<Item = ObjectId> + '_ {
        self.objects
            .iter()
            .enumerate()
            .filter(move |(_, d)| d.role == Role::Witness && d.class == Some(class))
            .map(|(i, _)| ObjectId::from_index(i))
    }

    /// The witness inhabitants of the anonymous environment
    /// `Obj ∖ (named ∪ classes)`.
    pub fn anon_witnesses(&self) -> impl Iterator<Item = ObjectId> + '_ {
        self.objects
            .iter()
            .enumerate()
            .filter(|(_, d)| d.role == Role::Witness && d.class.is_none())
            .map(|(i, _)| ObjectId::from_index(i))
    }

    /// The witness inhabitants of the fresh-method residue.
    pub fn method_witnesses(&self) -> impl Iterator<Item = MethodId> + '_ {
        self.methods
            .iter()
            .enumerate()
            .filter(|(_, d)| d.role == Role::Witness)
            .map(|(i, _)| MethodId::from_index(i))
    }

    /// The witness inhabitants of a data-class residue.
    pub fn data_witnesses(&self, class: ClassId) -> impl Iterator<Item = DataId> + '_ {
        self.data
            .iter()
            .enumerate()
            .filter(move |(_, d)| d.role == Role::Witness && d.class == class)
            .map(|(i, _)| DataId::from_index(i))
    }

    /// The class a declared or witness object belongs to, if any.
    pub fn class_of_object(&self, o: ObjectId) -> Option<ClassId> {
        self.objects[o.index()].class
    }

    /// The role (declared vs witness) of an object.
    pub fn object_role(&self, o: ObjectId) -> Role {
        self.objects[o.index()].role
    }

    /// The role of a method.
    pub fn method_role(&self, m: MethodId) -> Role {
        self.methods[m.index()].role
    }

    /// The role of a data value.
    pub fn data_role(&self, d: DataId) -> Role {
        self.data[d.index()].role
    }

    /// The class of a data value.
    pub fn class_of_data(&self, d: DataId) -> ClassId {
        self.data[d.index()].class
    }

    /// The signature of a method.
    pub fn method_sig(&self, m: MethodId) -> MethodSig {
        self.methods[m.index()].sig
    }

    /// The kind (object/data) of a class.
    pub fn class_kind(&self, c: ClassId) -> ClassKind {
        self.classes[c.index()].kind
    }

    /// Human-readable names.
    pub fn object_name(&self, o: ObjectId) -> &str {
        &self.objects[o.index()].name
    }
    /// The name of a method.
    pub fn method_name(&self, m: MethodId) -> &str {
        &self.methods[m.index()].name
    }
    /// The name of a class.
    pub fn class_name(&self, c: ClassId) -> &str {
        &self.classes[c.index()].name
    }
    /// The name of a data value.
    pub fn data_name(&self, d: DataId) -> &str {
        &self.data[d.index()].name
    }

    /// Look up a declared or witness object by name.
    pub fn object_by_name(&self, name: &str) -> Option<ObjectId> {
        self.object_names.get(name).copied()
    }
    /// Look up a method by name.
    pub fn method_by_name(&self, name: &str) -> Option<MethodId> {
        self.method_names.get(name).copied()
    }
    /// Look up a class by name.
    pub fn class_by_name(&self, name: &str) -> Option<ClassId> {
        self.class_names.get(name).copied()
    }
    /// Look up a data value by name.
    pub fn data_by_name(&self, name: &str) -> Option<DataId> {
        self.data_names.get(name).copied()
    }

    /// Number of object symbols (declared + witnesses).
    pub fn object_count(&self) -> usize {
        self.objects.len()
    }
    /// Number of method symbols (declared + witnesses).
    pub fn method_count(&self) -> usize {
        self.methods.len()
    }
    /// Number of classes.
    pub fn class_count(&self) -> usize {
        self.classes.len()
    }
    /// Number of data symbols (declared + witnesses).
    pub fn data_count(&self) -> usize {
        self.data.len()
    }
}

/// Mutable builder; [`UniverseBuilder::freeze`] yields the immutable
/// shareable [`Universe`].
#[derive(Debug, Default)]
pub struct UniverseBuilder {
    objects: Vec<ObjectDef>,
    classes: Vec<ClassDef>,
    methods: Vec<MethodDef>,
    data: Vec<DataDef>,
    object_names: HashMap<String, ObjectId>,
    class_names: HashMap<String, ClassId>,
    method_names: HashMap<String, MethodId>,
    data_names: HashMap<String, DataId>,
}

impl UniverseBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    fn fresh_object(
        &mut self,
        name: &str,
        class: Option<ClassId>,
        role: Role,
    ) -> Result<ObjectId, UniverseError> {
        if self.object_names.contains_key(name) {
            return Err(UniverseError::DuplicateName(name.to_string()));
        }
        let id = ObjectId::from_index(self.objects.len());
        self.objects.push(ObjectDef { name: name.to_string(), class, role });
        self.object_names.insert(name.to_string(), id);
        Ok(id)
    }

    fn check_class(&self, c: ClassId, expected: ClassKind) -> Result<(), UniverseError> {
        let def = self.classes.get(c.index()).ok_or(UniverseError::UnknownClass(c))?;
        if def.kind != expected {
            return Err(UniverseError::WrongClassKind { class: def.name.clone(), expected });
        }
        Ok(())
    }

    /// Declare a named object outside all classes (like the paper's `o`,
    /// explicitly excluded from `Objects`).
    pub fn object(&mut self, name: &str) -> Result<ObjectId, UniverseError> {
        self.fresh_object(name, None, Role::Declared)
    }

    /// Declare a named object as a member of an object class (like the
    /// client `c ∈ Objects` of Example 4).
    pub fn object_in(&mut self, name: &str, class: ClassId) -> Result<ObjectId, UniverseError> {
        self.check_class(class, ClassKind::Object)?;
        self.fresh_object(name, Some(class), Role::Declared)
    }

    /// Declare an infinite class of objects (a subtype of `Obj`); classes
    /// are pairwise disjoint and exclude all objects not declared in them.
    pub fn object_class(&mut self, name: &str) -> Result<ClassId, UniverseError> {
        if self.class_names.contains_key(name) {
            return Err(UniverseError::DuplicateName(name.to_string()));
        }
        let id = ClassId::from_index(self.classes.len());
        self.classes.push(ClassDef { name: name.to_string(), kind: ClassKind::Object });
        self.class_names.insert(name.to_string(), id);
        Ok(id)
    }

    /// Declare an infinite class of data values (like the paper's `Data`).
    pub fn data_class(&mut self, name: &str) -> Result<ClassId, UniverseError> {
        if self.class_names.contains_key(name) {
            return Err(UniverseError::DuplicateName(name.to_string()));
        }
        let id = ClassId::from_index(self.classes.len());
        self.classes.push(ClassDef { name: name.to_string(), kind: ClassKind::Data });
        self.class_names.insert(name.to_string(), id);
        Ok(id)
    }

    /// Declare a named data value within a data class.
    pub fn data_value(&mut self, name: &str, class: ClassId) -> Result<DataId, UniverseError> {
        self.check_class(class, ClassKind::Data)?;
        if self.data_names.contains_key(name) {
            return Err(UniverseError::DuplicateName(name.to_string()));
        }
        let id = DataId::from_index(self.data.len());
        self.data.push(DataDef { name: name.to_string(), class, role: Role::Declared });
        self.data_names.insert(name.to_string(), id);
        Ok(id)
    }

    /// Declare a parameterless method.
    pub fn method(&mut self, name: &str) -> Result<MethodId, UniverseError> {
        self.add_method(name, MethodSig::None, Role::Declared)
    }

    /// Declare a method carrying one parameter of the given data class.
    pub fn method_with(&mut self, name: &str, class: ClassId) -> Result<MethodId, UniverseError> {
        self.check_class(class, ClassKind::Data)?;
        self.add_method(name, MethodSig::Data(class), Role::Declared)
    }

    fn add_method(
        &mut self,
        name: &str,
        sig: MethodSig,
        role: Role,
    ) -> Result<MethodId, UniverseError> {
        if self.method_names.contains_key(name) {
            return Err(UniverseError::DuplicateName(name.to_string()));
        }
        let id = MethodId::from_index(self.methods.len());
        self.methods.push(MethodDef { name: name.to_string(), sig, role });
        self.method_names.insert(name.to_string(), id);
        Ok(id)
    }

    /// Add `n` witness objects inhabiting the residue of `class`
    /// (`class ∖ named(class)`): concrete stand-ins for "any further
    /// object of the class" used by finitization.
    pub fn class_witnesses(
        &mut self,
        class: ClassId,
        n: usize,
    ) -> Result<Vec<ObjectId>, UniverseError> {
        self.check_class(class, ClassKind::Object)?;
        let base = self.classes[class.index()].name.clone();
        (0..n)
            .map(|i| {
                let name = format!("{base}!w{i}");
                self.fresh_object(&name, Some(class), Role::Witness)
            })
            .collect()
    }

    /// Add `n` witness objects inhabiting the anonymous environment
    /// (`Obj ∖ (named ∪ classes)`).
    pub fn anon_witnesses(&mut self, n: usize) -> Result<Vec<ObjectId>, UniverseError> {
        (0..n)
            .map(|i| {
                let name = format!("anon!w{i}");
                self.fresh_object(&name, None, Role::Witness)
            })
            .collect()
    }

    /// Add `n` witness methods inhabiting the fresh-method residue (the
    /// undeclared methods ranged over by `I(o,o′)`).  Witness methods are
    /// parameterless.
    pub fn method_witnesses(&mut self, n: usize) -> Result<Vec<MethodId>, UniverseError> {
        (0..n)
            .map(|i| {
                let name = format!("mtd!w{i}");
                self.add_method(&name, MethodSig::None, Role::Witness)
            })
            .collect()
    }

    /// Add `n` witness data values inhabiting the residue of a data class.
    pub fn data_witnesses(
        &mut self,
        class: ClassId,
        n: usize,
    ) -> Result<Vec<DataId>, UniverseError> {
        self.check_class(class, ClassKind::Data)?;
        let base = self.classes[class.index()].name.clone();
        (0..n)
            .map(|i| {
                let name = format!("{base}!w{i}");
                if self.data_names.contains_key(&name) {
                    return Err(UniverseError::DuplicateName(name));
                }
                let id = DataId::from_index(self.data.len());
                self.data.push(DataDef { name: name.clone(), class, role: Role::Witness });
                self.data_names.insert(name, id);
                Ok(id)
            })
            .collect()
    }

    /// Freeze the builder into an immutable shared universe.
    pub fn freeze(self) -> Arc<Universe> {
        Arc::new(Universe {
            uid: UNIVERSE_COUNTER.fetch_add(1, Ordering::Relaxed),
            objects: self.objects,
            classes: self.classes,
            methods: self.methods,
            data: self.data,
            object_names: self.object_names,
            class_names: self.class_names,
            method_names: self.method_names,
            data_names: self.data_names,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn declares_and_looks_up_symbols() {
        let mut b = UniverseBuilder::new();
        let objects = b.object_class("Objects").unwrap();
        let data = b.data_class("Data").unwrap();
        let o = b.object("o").unwrap();
        let c = b.object_in("c", objects).unwrap();
        let r = b.method_with("R", data).unwrap();
        let ow = b.method("OW").unwrap();
        let d1 = b.data_value("d1", data).unwrap();
        let u = b.freeze();

        assert_eq!(u.object_by_name("o"), Some(o));
        assert_eq!(u.object_by_name("c"), Some(c));
        assert_eq!(u.method_by_name("R"), Some(r));
        assert_eq!(u.method_by_name("OW"), Some(ow));
        assert_eq!(u.class_by_name("Objects"), Some(objects));
        assert_eq!(u.data_by_name("d1"), Some(d1));
        assert_eq!(u.class_of_object(o), None);
        assert_eq!(u.class_of_object(c), Some(objects));
        assert_eq!(u.method_sig(r), MethodSig::Data(data));
        assert_eq!(u.method_sig(ow), MethodSig::None);
        assert_eq!(u.object_name(o), "o");
        assert_eq!(u.class_kind(objects), ClassKind::Object);
        assert_eq!(u.class_kind(data), ClassKind::Data);
    }

    #[test]
    fn duplicate_names_are_rejected_per_namespace() {
        let mut b = UniverseBuilder::new();
        b.object("x").unwrap();
        assert_eq!(b.object("x").unwrap_err(), UniverseError::DuplicateName("x".into()));
        // Same name in a different namespace is fine.
        b.method("x").unwrap();
        b.object_class("x").unwrap();
    }

    #[test]
    fn class_kinds_are_enforced() {
        let mut b = UniverseBuilder::new();
        let data = b.data_class("Data").unwrap();
        let objs = b.object_class("Objects").unwrap();
        assert!(matches!(b.object_in("y", data), Err(UniverseError::WrongClassKind { .. })));
        assert!(matches!(b.method_with("m", objs), Err(UniverseError::WrongClassKind { .. })));
        assert!(matches!(b.data_value("d", objs), Err(UniverseError::WrongClassKind { .. })));
    }

    #[test]
    fn witnesses_are_segregated_from_declared_symbols() {
        let mut b = UniverseBuilder::new();
        let objects = b.object_class("Objects").unwrap();
        let _o = b.object("o").unwrap();
        let c = b.object_in("c", objects).unwrap();
        let ws = b.class_witnesses(objects, 2).unwrap();
        let anons = b.anon_witnesses(1).unwrap();
        let mws = b.method_witnesses(2).unwrap();
        let u = b.freeze();

        let declared: Vec<_> = u.declared_objects().collect();
        assert_eq!(declared.len(), 2);
        assert!(!declared.contains(&ws[0]));
        let members: Vec<_> = u.declared_members(objects).collect();
        assert_eq!(members, vec![c]);
        let class_ws: Vec<_> = u.class_witnesses(objects).collect();
        assert_eq!(class_ws, ws);
        let anon_ws: Vec<_> = u.anon_witnesses().collect();
        assert_eq!(anon_ws, anons);
        let method_ws: Vec<_> = u.method_witnesses().collect();
        assert_eq!(method_ws, mws);
        assert_eq!(u.object_role(ws[0]), Role::Witness);
        assert_eq!(u.object_role(c), Role::Declared);
    }

    #[test]
    fn universes_have_distinct_uids() {
        let u1 = UniverseBuilder::new().freeze();
        let u2 = UniverseBuilder::new().freeze();
        assert_ne!(u1.uid(), u2.uid());
    }

    #[test]
    fn canonical_description_depends_on_content_not_identity() {
        let build = || {
            let mut b = UniverseBuilder::new();
            let data = b.data_class("Data").unwrap();
            b.object("o").unwrap();
            b.method_with("w", data).unwrap();
            b.data_witnesses(data, 2).unwrap();
            b.freeze()
        };
        let u1 = build();
        let u2 = build();
        assert_ne!(u1.uid(), u2.uid());
        assert_eq!(
            u1.canonical_description(),
            u2.canonical_description(),
            "same declarations must render identically"
        );
        let different = UniverseBuilder::new().freeze();
        assert_ne!(u1.canonical_description(), different.canonical_description());
    }

    #[test]
    fn data_witnesses_inhabit_their_class() {
        let mut b = UniverseBuilder::new();
        let data = b.data_class("Data").unwrap();
        let named = b.data_value("d0", data).unwrap();
        let ws = b.data_witnesses(data, 3).unwrap();
        let u = b.freeze();
        let declared: Vec<_> = u.declared_data_in(data).collect();
        assert_eq!(declared, vec![named]);
        let witnesses: Vec<_> = u.data_witnesses(data).collect();
        assert_eq!(witnesses, ws);
        for w in ws {
            assert_eq!(u.class_of_data(w), data);
            assert_eq!(u.data_role(w), Role::Witness);
        }
    }
}
