//! The paper's derived event sets: `α_o`, `I(o₁,o₂)`, `I(S)`, `I(S₁,S₂)`
//! and the Def.-1 admissible alphabet of an object set.
//!
//! Def. 3 makes the internal-event set of a pair of objects the set of
//! *all* possible communication events between them — over every method,
//! declared or not: *"In some sense, we hide more than we can see."*  The
//! granule representation renders this faithfully: each `I` set includes
//! the undeclared-method residue granule.

use crate::pattern::EventPattern;
use crate::set::EventSet;
use crate::universe::Universe;
use pospec_trace::ObjectId;
use std::collections::BTreeSet;
use std::sync::Arc;

/// `α_o` — the set of all possible observable communication events of the
/// object `o` (paper §2): every event with `o` as caller or callee, any
/// partner, any method, any argument.
pub fn alpha_object(u: &Arc<Universe>, o: ObjectId) -> EventSet {
    let outgoing = EventPattern::any_method(o, crate::pattern::ObjSpec::Any).to_set(u);
    let incoming = EventPattern::any_method(crate::pattern::ObjSpec::Any, o).to_set(u);
    outgoing.union(&incoming)
}

/// `I(o₁,o₂)` — all possible communication events between two objects, in
/// both directions (Def. 3).
pub fn internal_of_pair(u: &Arc<Universe>, o1: ObjectId, o2: ObjectId) -> EventSet {
    if o1 == o2 {
        return EventSet::empty(u);
    }
    let fwd = EventPattern::any_method(o1, o2).to_set(u);
    let bwd = EventPattern::any_method(o2, o1).to_set(u);
    fwd.union(&bwd)
}

/// `I(S)` — the pairwise union of the internal events of the objects in
/// `S` (Def. 8): all events with *both* endpoints in `S`.
pub fn internal_of_set(u: &Arc<Universe>, s: &BTreeSet<ObjectId>) -> EventSet {
    let mut acc = EventSet::empty(u);
    let v: Vec<ObjectId> = s.iter().copied().collect();
    for (i, &a) in v.iter().enumerate() {
        for &b in &v[i + 1..] {
            acc = acc.union(&internal_of_pair(u, a, b));
        }
    }
    acc
}

/// `I(S₁,S₂)` — the events `⟨o,o′,m⟩` with one endpoint in `S₁` and the
/// other in `S₂` (the notation introduced in the proof of Lemma 15).
pub fn internal_between(
    u: &Arc<Universe>,
    s1: &BTreeSet<ObjectId>,
    s2: &BTreeSet<ObjectId>,
) -> EventSet {
    let mut acc = EventSet::empty(u);
    for &a in s1 {
        for &b in s2 {
            acc = acc.union(&internal_of_pair(u, a, b));
        }
    }
    acc
}

/// The Def.-1 upper bound on a specification alphabet for the object set
/// `O`:
///
/// ```text
/// { ⟨o₁,o₂,m⟩ ∈ ⋃_{o∈O} α_o  |  ¬(o₁ ∈ O ∧ o₂ ∈ O) }
/// ```
///
/// i.e. every event involving at least one object of `O`, minus the events
/// internal to `O`.
pub fn admissible_alphabet(u: &Arc<Universe>, objects: &BTreeSet<ObjectId>) -> EventSet {
    let mut union = EventSet::empty(u);
    for &o in objects {
        union = union.union(&alpha_object(u, o));
    }
    union.difference(&internal_of_set(u, objects))
}

/// Decide `alphabet ⊆ admissible_alphabet(u, objects)` without
/// materializing the admissible set.
///
/// [`admissible_alphabet`] expands `α_o`'s `Any` endpoints into one
/// granule per declared object, so building it is `O(|universe|)` —
/// quadratic over a document whose spec count grows with the universe.
/// This check is `O(|alphabet| + |objects|²)` instead: a granule lies
/// under `⋃_{o∈O} α_o` iff one of its endpoint atoms is the atom of
/// some `o ∈ O` (atoms are disjoint, so no other granule can contain
/// an event involving `O`), and the internal events of a small object
/// set are cheap to intersect against.
pub fn alphabet_is_admissible(
    u: &Arc<Universe>,
    objects: &BTreeSet<ObjectId>,
    alphabet: &EventSet,
) -> bool {
    let atoms: BTreeSet<crate::granule::ObjGranule> =
        objects.iter().map(|&o| crate::granule::ObjGranule::of(u, o)).collect();
    alphabet.granules().all(|g| atoms.contains(&g.caller) || atoms.contains(&g.callee))
        && alphabet.intersect(&internal_of_set(u, objects)).is_empty()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::universe::UniverseBuilder;
    use pospec_trace::{Event, MethodId};

    struct Fix {
        u: Arc<Universe>,
        o1: ObjectId,
        o2: ObjectId,
        o3: ObjectId,
        ow: MethodId,
    }

    fn fix() -> Fix {
        let mut b = UniverseBuilder::new();
        let objects = b.object_class("Objects").unwrap();
        let o1 = b.object("o1").unwrap();
        let o2 = b.object("o2").unwrap();
        let o3 = b.object("o3").unwrap();
        let ow = b.method("OW").unwrap();
        b.class_witnesses(objects, 1).unwrap();
        b.anon_witnesses(1).unwrap();
        b.method_witnesses(1).unwrap();
        Fix { u: b.freeze(), o1, o2, o3, ow }
    }

    #[test]
    fn alpha_object_contains_all_events_of_o() {
        let f = fix();
        let a = alpha_object(&f.u, f.o1);
        assert!(a.contains(&Event::call(f.o1, f.o2, f.ow)));
        assert!(a.contains(&Event::call(f.o2, f.o1, f.ow)));
        let fresh = f.u.method_witnesses().next().unwrap();
        assert!(a.contains(&Event::call(f.o1, f.o3, fresh)));
        assert!(!a.contains(&Event::call(f.o2, f.o3, f.ow)));
        assert!(a.is_infinite());
    }

    #[test]
    fn internal_pair_is_symmetric_and_covers_fresh_methods() {
        let f = fix();
        let i12 = internal_of_pair(&f.u, f.o1, f.o2);
        let i21 = internal_of_pair(&f.u, f.o2, f.o1);
        assert!(i12.set_eq(&i21));
        assert!(i12.contains(&Event::call(f.o1, f.o2, f.ow)));
        assert!(i12.contains(&Event::call(f.o2, f.o1, f.ow)));
        let fresh = f.u.method_witnesses().next().unwrap();
        assert!(
            i12.contains(&Event::call(f.o1, f.o2, fresh)),
            "Def. 3 hides more than we can see: undeclared methods are internal too"
        );
        assert!(!i12.contains(&Event::call(f.o1, f.o3, f.ow)));
        assert!(internal_of_pair(&f.u, f.o1, f.o1).is_empty());
    }

    #[test]
    fn internal_of_set_is_pairwise_union() {
        let f = fix();
        let s: BTreeSet<_> = [f.o1, f.o2, f.o3].into_iter().collect();
        let i = internal_of_set(&f.u, &s);
        let manual = internal_of_pair(&f.u, f.o1, f.o2)
            .union(&internal_of_pair(&f.u, f.o1, f.o3))
            .union(&internal_of_pair(&f.u, f.o2, f.o3));
        assert!(i.set_eq(&manual));
        // Events leaving the set are not internal.
        let wit = f.u.anon_witnesses().next().unwrap();
        assert!(!i.contains(&Event::call(f.o1, wit, f.ow)));
    }

    #[test]
    fn fast_admissibility_agrees_with_the_materialized_set() {
        let f = fix();
        // Candidate alphabets, including inadmissible ones (internal
        // events, events not involving the object set, class residues).
        let wit = f.u.class_witnesses(f.u.class_by_name("Objects").unwrap()).next().unwrap();
        let candidates: Vec<EventSet> = vec![
            EventPattern::any_method(f.o1, f.o2).to_set(&f.u),
            EventPattern::any_method(f.o2, f.o1).to_set(&f.u),
            EventPattern::any_method(f.o1, f.o3).to_set(&f.u),
            EventPattern::any_method(f.o2, f.o3).to_set(&f.u),
            EventPattern::any_method(crate::pattern::ObjSpec::Any, f.o1).to_set(&f.u),
            EventPattern::any_method(wit, f.o1).to_set(&f.u),
            alpha_object(&f.u, f.o1),
            EventSet::empty(&f.u),
        ];
        let object_sets: Vec<BTreeSet<ObjectId>> = vec![
            [f.o1].into_iter().collect(),
            [f.o2].into_iter().collect(),
            [f.o1, f.o2].into_iter().collect(),
            [f.o1, f.o3].into_iter().collect(),
            [f.o1, f.o2, f.o3].into_iter().collect(),
            [wit].into_iter().collect(),
            [f.o1, wit].into_iter().collect(),
        ];
        for objects in &object_sets {
            let admissible = admissible_alphabet(&f.u, objects);
            for (i, alpha) in candidates.iter().enumerate() {
                // Unions of candidates widen the sample beyond single
                // patterns.
                for (j, other) in candidates.iter().enumerate() {
                    let set = alpha.union(other);
                    assert_eq!(
                        alphabet_is_admissible(&f.u, objects, &set),
                        set.is_subset(&admissible),
                        "candidates {i}∪{j} over {objects:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn internal_of_singleton_or_empty_set_is_empty() {
        let f = fix();
        let empty: BTreeSet<ObjectId> = BTreeSet::new();
        assert!(internal_of_set(&f.u, &empty).is_empty());
        let single: BTreeSet<_> = [f.o1].into_iter().collect();
        assert!(internal_of_set(&f.u, &single).is_empty());
    }

    #[test]
    fn internal_between_matches_lemma_15_reading() {
        let f = fix();
        let s1: BTreeSet<_> = [f.o1].into_iter().collect();
        let s2: BTreeSet<_> = [f.o2, f.o3].into_iter().collect();
        let i = internal_between(&f.u, &s1, &s2);
        assert!(i.contains(&Event::call(f.o1, f.o2, f.ow)));
        assert!(i.contains(&Event::call(f.o3, f.o1, f.ow)));
        assert!(!i.contains(&Event::call(f.o2, f.o3, f.ow)));
    }

    #[test]
    fn internal_between_overlapping_sets_contains_their_internal_events() {
        let f = fix();
        let s: BTreeSet<_> = [f.o1, f.o2].into_iter().collect();
        let i = internal_between(&f.u, &s, &s);
        assert!(i.set_eq(&internal_of_set(&f.u, &s)));
    }

    #[test]
    fn admissible_alphabet_excludes_internal_events() {
        let f = fix();
        let o: BTreeSet<_> = [f.o1, f.o2].into_iter().collect();
        let adm = admissible_alphabet(&f.u, &o);
        // Internal to O: excluded.
        assert!(!adm.contains(&Event::call(f.o1, f.o2, f.ow)));
        // Crossing the boundary: included.
        assert!(adm.contains(&Event::call(f.o1, f.o3, f.ow)));
        assert!(adm.contains(&Event::call(f.o3, f.o2, f.ow)));
        // Events not involving O at all: excluded.
        let wit = f.u.anon_witnesses().next().unwrap();
        assert!(!adm.contains(&Event::call(f.o3, wit, f.ow)));
        assert!(adm.is_infinite());
    }

    #[test]
    fn admissible_alphabet_decomposes_as_union_minus_internal() {
        let f = fix();
        let o: BTreeSet<_> = [f.o1, f.o2].into_iter().collect();
        let adm = admissible_alphabet(&f.u, &o);
        let manual = alpha_object(&f.u, f.o1)
            .union(&alpha_object(&f.u, f.o2))
            .difference(&internal_of_set(&f.u, &o));
        assert!(adm.set_eq(&manual));
    }
}
