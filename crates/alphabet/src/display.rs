//! Human-readable rendering of events and traces with universe names.
//!
//! `Event`/`Trace` print raw interned ids (`<o#1,o#0,m#2>`); given the
//! universe they can be rendered the way the paper writes them:
//! `⟨c,o,W(d0)⟩`.

use crate::universe::Universe;
use pospec_trace::{Arg, Event, Trace};
use std::fmt;

/// An [`Event`] paired with its universe for display.
pub struct EventDisplay<'a> {
    u: &'a Universe,
    e: &'a Event,
}

impl fmt::Display for EventDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "⟨{},{},{}",
            self.u.object_name(self.e.caller),
            self.u.object_name(self.e.callee),
            self.u.method_name(self.e.method)
        )?;
        if let Arg::Data(d) = self.e.arg {
            write!(f, "({})", self.u.data_name(d))?;
        }
        write!(f, "⟩")
    }
}

/// A [`Trace`] paired with its universe for display.
pub struct TraceDisplay<'a> {
    u: &'a Universe,
    t: &'a Trace,
}

impl fmt::Display for TraceDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.t.is_empty() {
            return write!(f, "ε");
        }
        for (i, e) in self.t.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{}", display_event(self.u, e))?;
        }
        Ok(())
    }
}

/// Render one event with names.
pub fn display_event<'a>(u: &'a Universe, e: &'a Event) -> EventDisplay<'a> {
    EventDisplay { u, e }
}

/// Render a trace with names.
pub fn display_trace<'a>(u: &'a Universe, t: &'a Trace) -> TraceDisplay<'a> {
    TraceDisplay { u, t }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::universe::UniverseBuilder;

    #[test]
    fn events_and_traces_render_with_names() {
        let mut b = UniverseBuilder::new();
        let data = b.data_class("Data").unwrap();
        let o = b.object("o").unwrap();
        let c = b.object("c").unwrap();
        let w = b.method_with("W", data).unwrap();
        let ow = b.method("OW").unwrap();
        let d = b.data_value("d0", data).unwrap();
        let u = b.freeze();

        let e1 = Event::call(c, o, ow);
        let e2 = Event::call_with(c, o, w, d);
        assert_eq!(display_event(&u, &e1).to_string(), "⟨c,o,OW⟩");
        assert_eq!(display_event(&u, &e2).to_string(), "⟨c,o,W(d0)⟩");

        let t = Trace::from_events(vec![e1, e2]);
        assert_eq!(display_trace(&u, &t).to_string(), "⟨c,o,OW⟩ ⟨c,o,W(d0)⟩");
        assert_eq!(display_trace(&u, &Trace::empty()).to_string(), "ε");
    }
}
