//! A convenient pattern layer for writing alphabets the way the paper does.
//!
//! Alphabets in the paper are written as comprehensions such as
//!
//! ```text
//! α(Read) ≜ {⟨x, o, R(d)⟩ | x ∈ Objects ∧ d ∈ Data}
//! ```
//!
//! An [`EventPattern`] captures one such comprehension; it *normalizes* to
//! the exact granule representation ([`crate::set::EventSet`]) of the
//! denoted set.  The pattern layer is sugar only — all reasoning happens on
//! granule sets.

use crate::granule::{
    all_method_arg_granules, all_obj_granules, ArgGranule, EventGranule, MethodGranule, ObjGranule,
};
use crate::set::EventSet;
use crate::universe::{MethodSig, Universe};
use pospec_trace::{ClassId, DataId, MethodId, ObjectId};
use std::sync::Arc;

/// An object position of a pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ObjSpec {
    /// Exactly this object.  A witness identity denotes its whole residue
    /// granule (single witnesses are not symbolically expressible).
    Id(ObjectId),
    /// Any member of the class — its named members and its residue.
    Class(ClassId),
    /// Any object whatsoever.
    Any,
}

impl ObjSpec {
    fn expand(self, u: &Universe) -> Vec<ObjGranule> {
        match self {
            ObjSpec::Id(o) => vec![ObjGranule::of(u, o)],
            ObjSpec::Class(c) => {
                let mut v: Vec<ObjGranule> = u.declared_members(c).map(ObjGranule::Named).collect();
                v.push(ObjGranule::ClassRest(c));
                v
            }
            ObjSpec::Any => all_obj_granules(u),
        }
    }
}

impl From<ObjectId> for ObjSpec {
    fn from(o: ObjectId) -> Self {
        ObjSpec::Id(o)
    }
}
impl From<ClassId> for ObjSpec {
    fn from(c: ClassId) -> Self {
        ObjSpec::Class(c)
    }
}

/// The argument position of a pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ArgSpec {
    /// Whatever the method's signature admits: no argument for a
    /// parameterless method, all values of the class for a parameterised
    /// one.  This is the comprehension `d ∈ Data` of the paper.
    #[default]
    Auto,
    /// Exactly this named data value.
    Value(DataId),
    /// No argument (only parameterless methods match).
    None,
}

/// One alphabet comprehension `⟨caller, callee, m(arg)⟩`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EventPattern {
    /// Caller position.
    pub caller: ObjSpec,
    /// Callee position.
    pub callee: ObjSpec,
    /// Method: `Some(m)` for a named method, `None` for "any method
    /// whatsoever" (used when describing full object alphabets).
    pub method: Option<MethodId>,
    /// Argument position.
    pub arg: ArgSpec,
}

impl EventPattern {
    /// `⟨caller, callee, m(·)⟩` with the signature-driven argument
    /// comprehension.
    pub fn call(caller: impl Into<ObjSpec>, callee: impl Into<ObjSpec>, method: MethodId) -> Self {
        EventPattern {
            caller: caller.into(),
            callee: callee.into(),
            method: Some(method),
            arg: ArgSpec::Auto,
        }
    }

    /// `⟨caller, callee, m(d)⟩` for one specific data value.
    pub fn call_value(
        caller: impl Into<ObjSpec>,
        callee: impl Into<ObjSpec>,
        method: MethodId,
        d: DataId,
    ) -> Self {
        EventPattern {
            caller: caller.into(),
            callee: callee.into(),
            method: Some(method),
            arg: ArgSpec::Value(d),
        }
    }

    /// `⟨caller, callee, m⟩` over **every** method (declared or not) —
    /// the shape of the internal-event sets of Def. 3.
    pub fn any_method(caller: impl Into<ObjSpec>, callee: impl Into<ObjSpec>) -> Self {
        EventPattern {
            caller: caller.into(),
            callee: callee.into(),
            method: None,
            arg: ArgSpec::Auto,
        }
    }

    fn method_arg_granules(&self, u: &Universe) -> Vec<(MethodGranule, ArgGranule)> {
        match self.method {
            None => all_method_arg_granules(u),
            Some(m) => match u.method_sig(m) {
                MethodSig::None => vec![(MethodGranule::Named(m), ArgGranule::None)],
                MethodSig::Data(c) => match self.arg {
                    ArgSpec::Value(d) => vec![(MethodGranule::Named(m), ArgGranule::NamedData(d))],
                    ArgSpec::None => vec![],
                    ArgSpec::Auto => {
                        let mut v: Vec<(MethodGranule, ArgGranule)> = u
                            .declared_data_in(c)
                            .map(|d| (MethodGranule::Named(m), ArgGranule::NamedData(d)))
                            .collect();
                        v.push((MethodGranule::Named(m), ArgGranule::DataRest(c)));
                        v
                    }
                },
            },
        }
    }

    /// Normalize to the exact granule set.
    pub fn to_set(&self, u: &Arc<Universe>) -> EventSet {
        let callers = self.caller.expand(u);
        let callees = self.callee.expand(u);
        let mas = self.method_arg_granules(u);
        let mut granules = Vec::new();
        for &cr in &callers {
            for &ce in &callees {
                for &(m, a) in &mas {
                    granules.push(EventGranule::new(cr, ce, m, a));
                }
            }
        }
        EventSet::from_granules(u, granules)
    }
}

/// Union of several patterns — the usual shape of a specification alphabet.
pub fn patterns_to_set(u: &Arc<Universe>, patterns: &[EventPattern]) -> EventSet {
    patterns.iter().fold(EventSet::empty(u), |acc, p| acc.union(&p.to_set(u)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::universe::UniverseBuilder;
    use pospec_trace::Event;

    struct Fix {
        u: Arc<Universe>,
        o: ObjectId,
        c: ObjectId,
        objects: ClassId,
        data: ClassId,
        r: MethodId,
        ow: MethodId,
        d1: DataId,
    }

    fn fix() -> Fix {
        let mut b = UniverseBuilder::new();
        let objects = b.object_class("Objects").unwrap();
        let data = b.data_class("Data").unwrap();
        let o = b.object("o").unwrap();
        let c = b.object_in("c", objects).unwrap();
        let r = b.method_with("R", data).unwrap();
        let ow = b.method("OW").unwrap();
        let d1 = b.data_value("d1", data).unwrap();
        b.class_witnesses(objects, 2).unwrap();
        b.anon_witnesses(1).unwrap();
        b.method_witnesses(1).unwrap();
        b.data_witnesses(data, 1).unwrap();
        Fix { u: b.freeze(), o, c, objects, data, r, ow, d1 }
    }

    #[test]
    fn read_alphabet_of_example_1() {
        // α(Read) = {⟨x, o, R(d)⟩ | x ∈ Objects, d ∈ Data}.
        let f = fix();
        let alpha = EventPattern::call(f.objects, f.o, f.r).to_set(&f.u);
        assert!(alpha.is_infinite());
        let wit = f.u.class_witnesses(f.objects).next().unwrap();
        let dwit = f.u.data_witnesses(f.data).next().unwrap();
        assert!(alpha.contains(&Event::call_with(wit, f.o, f.r, dwit)));
        assert!(alpha.contains(&Event::call_with(f.c, f.o, f.r, f.d1)));
        // o never calls R in this alphabet.
        assert!(!alpha.contains(&Event::call_with(f.o, f.c, f.r, f.d1)));
        // OW is not in α(Read).
        assert!(!alpha.contains(&Event::call(f.c, f.o, f.ow)));
        // Anonymous callers are outside Objects.
        let anon = f.u.anon_witnesses().next().unwrap();
        assert!(!alpha.contains(&Event::call_with(anon, f.o, f.r, f.d1)));
    }

    #[test]
    fn class_spec_includes_named_members_and_residue() {
        let f = fix();
        let set = EventPattern::call(f.objects, f.o, f.ow).to_set(&f.u);
        // Granules: caller ∈ {c, Objects∖named} → two granules.
        assert_eq!(set.granule_count(), 2);
        assert!(set.contains(&Event::call(f.c, f.o, f.ow)));
    }

    #[test]
    fn specific_value_pattern_is_finite() {
        let f = fix();
        let set = EventPattern::call_value(f.c, f.o, f.r, f.d1).to_set(&f.u);
        assert!(!set.is_infinite());
        assert_eq!(set.enumerate_concrete().len(), 1);
    }

    #[test]
    fn any_method_pattern_covers_undeclared_methods() {
        let f = fix();
        let set = EventPattern::any_method(f.c, f.o).to_set(&f.u);
        let fresh = f.u.method_witnesses().next().unwrap();
        assert!(set.contains(&Event::call(f.c, f.o, fresh)));
        assert!(set.contains(&Event::call(f.c, f.o, f.ow)));
        assert!(set.contains(&Event::call_with(f.c, f.o, f.r, f.d1)));
        assert!(!set.contains(&Event::call(f.o, f.c, f.ow)), "direction matters");
    }

    #[test]
    fn arg_none_on_parameterised_method_denotes_empty() {
        let f = fix();
        let p = EventPattern {
            caller: ObjSpec::Id(f.c),
            callee: ObjSpec::Id(f.o),
            method: Some(f.r),
            arg: ArgSpec::None,
        };
        assert!(p.to_set(&f.u).is_empty());
    }

    #[test]
    fn union_of_patterns_matches_manual_union() {
        let f = fix();
        let a = EventPattern::call(f.objects, f.o, f.ow);
        let b = EventPattern::call(f.objects, f.o, f.r);
        let joint = patterns_to_set(&f.u, &[a, b]);
        assert!(joint.set_eq(&a.to_set(&f.u).union(&b.to_set(&f.u))));
    }

    #[test]
    fn any_object_spec_covers_anonymous_environment() {
        let f = fix();
        let set = EventPattern::call(ObjSpec::Any, f.o, f.ow).to_set(&f.u);
        let anon = f.u.anon_witnesses().next().unwrap();
        assert!(set.contains(&Event::call(anon, f.o, f.ow)));
    }
}
