//! Property-based validation of the granule algebra.
//!
//! The exactness claims of the crate rest on two facts: distinct granules
//! denote disjoint non-empty sets, and every concrete event inhabits
//! exactly one granule.  These tests probe both, plus the Boolean-algebra
//! laws, on randomized universes and random granule subsets.

use pospec_alphabet::{
    admissible_alphabet, internal_of_pair, internal_of_set, EventSet, Universe, UniverseBuilder,
};
use pospec_trace::{Event, ObjectId};
use proptest::prelude::*;
use std::collections::BTreeSet;
use std::sync::Arc;

/// Build a universe with `n_objs` objects (some in the class), `n_methods`
/// methods (some parameterised), and witnesses everywhere.
fn universe(n_objs: usize, n_methods: usize) -> Arc<Universe> {
    let mut b = UniverseBuilder::new();
    let cls = b.object_class("C").unwrap();
    let data = b.data_class("D").unwrap();
    for i in 0..n_objs {
        if i % 2 == 0 {
            b.object(&format!("o{i}")).unwrap();
        } else {
            b.object_in(&format!("o{i}"), cls).unwrap();
        }
    }
    for i in 0..n_methods {
        if i % 2 == 0 {
            b.method(&format!("m{i}")).unwrap();
        } else {
            b.method_with(&format!("m{i}"), data).unwrap();
        }
    }
    b.data_value("d0", data).unwrap();
    b.class_witnesses(cls, 2).unwrap();
    b.anon_witnesses(2).unwrap();
    b.method_witnesses(2).unwrap();
    b.data_witnesses(data, 2).unwrap();
    b.freeze()
}

/// A random subset of the universal granule set, driven by a bitmask seed.
fn subset(u: &Arc<Universe>, mask: u64) -> EventSet {
    let mut i = 0u64;
    EventSet::universal(u).filter_granules(move |_| {
        i = i.wrapping_add(1);
        (mask >> (i % 64)) & 1 == 1
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Boolean-algebra laws on random granule subsets.
    #[test]
    fn boolean_laws(mask_a in any::<u64>(), mask_b in any::<u64>(), mask_c in any::<u64>()) {
        let u = universe(3, 3);
        let a = subset(&u, mask_a);
        let b = subset(&u, mask_b);
        let c = subset(&u, mask_c);
        // Distribution.
        prop_assert!(a.intersect(&b.union(&c)).set_eq(&a.intersect(&b).union(&a.intersect(&c))));
        // De Morgan.
        prop_assert!(a.union(&b).complement().set_eq(&a.complement().intersect(&b.complement())));
        // Difference decomposition.
        prop_assert!(a.difference(&b).union(&a.intersect(&b)).set_eq(&a));
        // Subset is antisymmetric on sets.
        if a.is_subset(&b) && b.is_subset(&a) {
            prop_assert!(a.set_eq(&b));
        }
        // Complement involution.
        prop_assert!(a.complement().complement().set_eq(&a));
    }

    /// Every enumerable concrete event is a member of exactly the sets
    /// whose granules it inhabits: membership is consistent with the
    /// Boolean structure.
    #[test]
    fn membership_is_boolean_consistent(mask_a in any::<u64>(), mask_b in any::<u64>()) {
        let u = universe(3, 2);
        let a = subset(&u, mask_a);
        let b = subset(&u, mask_b);
        for e in EventSet::universal(&u).enumerate_concrete().into_iter().take(300) {
            prop_assert_eq!(a.union(&b).contains(&e), a.contains(&e) || b.contains(&e));
            prop_assert_eq!(a.intersect(&b).contains(&e), a.contains(&e) && b.contains(&e));
            prop_assert_eq!(a.difference(&b).contains(&e), a.contains(&e) && !b.contains(&e));
            prop_assert_eq!(a.complement().contains(&e), !a.contains(&e));
        }
    }

    /// Every concrete event over the universe's symbols inhabits exactly
    /// one granule of the universal set (the partition property).
    #[test]
    fn universal_set_partitions_concrete_events(obj_i in 0usize..8, obj_j in 0usize..8, m_i in 0usize..5) {
        let u = universe(3, 3);
        let objs: Vec<ObjectId> = (0..u.object_count()).map(ObjectId::from_index).collect();
        let methods: Vec<_> = (0..u.method_count()).map(pospec_trace::MethodId::from_index).collect();
        let caller = objs[obj_i % objs.len()];
        let callee = objs[obj_j % objs.len()];
        prop_assume!(caller != callee);
        let method = methods[m_i % methods.len()];
        // Use an argument consistent with the signature.
        let arg = match u.method_sig(method) {
            pospec_alphabet::universe::MethodSig::None => pospec_trace::Arg::None,
            pospec_alphabet::universe::MethodSig::Data(c) => {
                pospec_trace::Arg::Data(u.data_witnesses(c).next().unwrap())
            }
        };
        let e = Event::new(caller, callee, method, arg).unwrap();
        let uni = EventSet::universal(&u);
        let holders: Vec<_> = uni.granules().filter(|g| g.contains(&u, &e)).collect();
        prop_assert_eq!(holders.len(), 1, "event {} must inhabit exactly one granule", e);
        prop_assert!(uni.contains(&e));
    }

    /// `I` is monotone and symmetric; `admissible_alphabet` never contains
    /// internal events.
    #[test]
    fn internal_event_laws(sel in prop::collection::vec(any::<bool>(), 3)) {
        let u = universe(3, 2);
        let declared: Vec<ObjectId> = u.declared_objects().collect();
        let chosen: BTreeSet<ObjectId> = declared
            .iter()
            .zip(sel.iter())
            .filter(|(_, keep)| **keep)
            .map(|(o, _)| *o)
            .collect();
        let all: BTreeSet<ObjectId> = declared.iter().copied().collect();
        let i_chosen = internal_of_set(&u, &chosen);
        let i_all = internal_of_set(&u, &all);
        prop_assert!(i_chosen.is_subset(&i_all), "I is monotone in the object set");
        let adm = admissible_alphabet(&u, &chosen);
        prop_assert!(adm.is_disjoint(&i_chosen), "admissible alphabets exclude internal events");
        // Pairwise symmetry.
        for &a in &declared {
            for &b in &declared {
                prop_assert!(internal_of_pair(&u, a, b).set_eq(&internal_of_pair(&u, b, a)));
            }
        }
    }

    /// Enumeration is consistent: every enumerated event is a member, and
    /// enumeration of a union is the union of enumerations.
    #[test]
    fn enumeration_consistency(mask_a in any::<u64>(), mask_b in any::<u64>()) {
        let u = universe(2, 2);
        let a = subset(&u, mask_a);
        let b = subset(&u, mask_b);
        for e in a.enumerate_concrete() {
            prop_assert!(a.contains(&e));
        }
        let mut manual: Vec<Event> = a.enumerate_concrete();
        manual.extend(b.enumerate_concrete());
        manual.sort_unstable();
        manual.dedup();
        prop_assert_eq!(a.union(&b).enumerate_concrete(), manual);
    }
}
