//! The universe and specifications of the paper's Examples 1–6 (§2–§8).
//!
//! One frozen universe hosts the access controller `o`, the monitor `o′`
//! (written `o_mon`), the client `c ∈ Objects`, the infinite sorts
//! `Objects` and `Data`, and the methods `R, OR, CR, OW, W, CW, OK` — plus
//! witnesses inhabiting every infinite granule so the finitized automaton
//! checks can exercise the open environment.

use pospec_alphabet::{EventPattern, Universe, UniverseBuilder};
use pospec_core::{Specification, TraceSet};
use pospec_regex::{prs, Re, Template, VarId};
use pospec_trace::{ClassId, DataId, Event, MethodId, ObjectId, Trace};
use std::sync::Arc;

/// All the names of the running example.
#[allow(missing_docs)]
pub struct Paper {
    pub u: Arc<Universe>,
    pub o: ObjectId,
    pub o_mon: ObjectId,
    pub c: ObjectId,
    pub objects: ClassId,
    pub data: ClassId,
    pub r: MethodId,
    pub or_: MethodId,
    pub cr: MethodId,
    pub ow: MethodId,
    pub w: MethodId,
    pub cw: MethodId,
    pub ok: MethodId,
    pub d0: DataId,
}

impl Paper {
    /// The standard fixture: two witnesses per infinite object granule.
    pub fn new() -> Paper {
        Paper::with_witnesses(2)
    }

    /// A fixture with `k` witnesses inhabiting the `Objects` residue
    /// (used by the finitization-stability experiments).
    pub fn with_witnesses(k: usize) -> Paper {
        let mut b = UniverseBuilder::new();
        let objects = b.object_class("Objects").unwrap();
        let data = b.data_class("Data").unwrap();
        let o = b.object("o").unwrap();
        let o_mon = b.object("o_mon").unwrap();
        let c = b.object_in("c", objects).unwrap();
        let r = b.method_with("R", data).unwrap();
        let or_ = b.method("OR").unwrap();
        let cr = b.method("CR").unwrap();
        let ow = b.method("OW").unwrap();
        let w = b.method_with("W", data).unwrap();
        let cw = b.method("CW").unwrap();
        let ok = b.method("OK").unwrap();
        let d = b.data_witnesses(data, 1).unwrap();
        b.class_witnesses(objects, k.max(1)).unwrap();
        b.anon_witnesses(1).unwrap();
        b.method_witnesses(1).unwrap();
        Paper { u: b.freeze(), o, o_mon, c, objects, data, r, or_, cr, ow, w, cw, ok, d0: d[0] }
    }

    /// A witness member of `Objects` other than `c`.
    pub fn env_obj(&self, i: usize) -> ObjectId {
        self.u.class_witnesses(self.objects).nth(i).expect("witness exists")
    }

    /// Example 1, `Read`: concurrent read access, unrestricted trace set.
    pub fn read(&self) -> Specification {
        let alpha = EventPattern::call(self.objects, self.o, self.r).to_set(&self.u);
        Specification::new("Read", [self.o], alpha, TraceSet::Universal).unwrap()
    }

    /// Example 1, `Write`: exclusive bracketed write sessions,
    /// `[[⟨x,o,OW⟩ ⟨x,o,W⟩* ⟨x,o,CW⟩] • x ∈ Objects]*`.
    pub fn write(&self) -> Specification {
        let alpha = EventPattern::call(self.objects, self.o, self.ow)
            .to_set(&self.u)
            .union(&EventPattern::call(self.objects, self.o, self.w).to_set(&self.u))
            .union(&EventPattern::call(self.objects, self.o, self.cw).to_set(&self.u));
        let x = VarId(0);
        let re = Re::seq([
            Re::lit(Template::call(x, self.o, self.ow)),
            Re::lit(Template::call(x, self.o, self.w)).star(),
            Re::lit(Template::call(x, self.o, self.cw)),
        ])
        .bind(x, self.objects)
        .star();
        Specification::new("Write", [self.o], alpha, TraceSet::prs(re)).unwrap()
    }

    /// Example 2, `Read2`: per-caller bracketed (but concurrent) reads,
    /// `∀x ∈ Objects : h/x prs [⟨x,o,OR⟩ ⟨x,o,R⟩* ⟨x,o,CR⟩]*`.
    pub fn read2(&self) -> Specification {
        let alpha = EventPattern::call(self.objects, self.o, self.or_)
            .to_set(&self.u)
            .union(&EventPattern::call(self.objects, self.o, self.r).to_set(&self.u))
            .union(&EventPattern::call(self.objects, self.o, self.cr).to_set(&self.u));
        let (u, o, or_, r, cr) = (Arc::clone(&self.u), self.o, self.or_, self.r, self.cr);
        let ts = TraceSet::predicate("∀x: h/x prs [OR R* CR]*", move |h: &Trace| {
            h.callers().into_iter().all(|x| {
                let re = Re::seq([
                    Re::lit(Template::call(x, o, or_)),
                    Re::lit(Template::call(x, o, r)).star(),
                    Re::lit(Template::call(x, o, cr)),
                ])
                .star();
                prs(&u, &h.project_caller(x), &re)
            })
        });
        Specification::new("Read2", [self.o], alpha, ts).unwrap()
    }

    /// Example 3's `P_RW1`: per caller,
    /// `h/x prs [OW [W | R]* CW | OR R* CR]*`.
    pub fn p_rw1(&self) -> TraceSet {
        let (u, o) = (Arc::clone(&self.u), self.o);
        let (or_, r, cr, ow, w, cw) = (self.or_, self.r, self.cr, self.ow, self.w, self.cw);
        TraceSet::predicate("P_RW1", move |h: &Trace| {
            h.callers().into_iter().all(|x| {
                let re = Re::alt([
                    Re::seq([
                        Re::lit(Template::call(x, o, ow)),
                        Re::alt([
                            Re::lit(Template::call(x, o, w)),
                            Re::lit(Template::call(x, o, r)),
                        ])
                        .star(),
                        Re::lit(Template::call(x, o, cw)),
                    ]),
                    Re::seq([
                        Re::lit(Template::call(x, o, or_)),
                        Re::lit(Template::call(x, o, r)).star(),
                        Re::lit(Template::call(x, o, cr)),
                    ]),
                ])
                .star();
                prs(&u, &h.project_caller(x), &re)
            })
        })
    }

    /// Example 3's `P_RW2`: the counting constraints
    /// `(#OW−#CW = 0 ∨ #OR−#CR = 0) ∧ #OW−#CW ≤ 1`.
    pub fn p_rw2(&self) -> TraceSet {
        let (or_, cr, ow, cw) = (self.or_, self.cr, self.ow, self.cw);
        TraceSet::predicate("P_RW2", move |h: &Trace| {
            let open_w = h.count_method(ow) as i64 - h.count_method(cw) as i64;
            let open_r = h.count_method(or_) as i64 - h.count_method(cr) as i64;
            (open_w == 0 || open_r == 0) && open_w <= 1
        })
    }

    /// Example 3, `RW`: the merged read/write controller.
    pub fn rw(&self) -> Specification {
        let alpha = self.write().alphabet().union(self.read2().alphabet());
        let ts = TraceSet::conj([self.p_rw1(), self.p_rw2()]);
        Specification::new("RW", [self.o], alpha, ts).unwrap()
    }

    /// Example 4, `WriteAcc`: `Write` with calls restricted to the client
    /// `c` (a refinement of `Write`).
    pub fn write_acc(&self) -> Specification {
        let re = Re::seq([
            Re::lit(Template::call(self.c, self.o, self.ow)),
            Re::lit(Template::call(self.c, self.o, self.w)).star(),
            Re::lit(Template::call(self.c, self.o, self.cw)),
        ])
        .star();
        Specification::new("WriteAcc", [self.o], self.write().alphabet().clone(), TraceSet::prs(re))
            .unwrap()
    }

    /// Example 4, `Client`: `c` alternates a write to `o` with an `OK`
    /// confirmation to the monitor `o′` — at an abstraction level that
    /// ignores `OW`/`CW` entirely.
    pub fn client(&self) -> Specification {
        let alpha = EventPattern::call(self.c, self.objects, self.w)
            .to_set(&self.u)
            .union(&EventPattern::call(self.c, self.o, self.w).to_set(&self.u))
            .union(&EventPattern::call(self.c, self.objects, self.ok).to_set(&self.u))
            .union(&EventPattern::call(self.c, self.o_mon, self.ok).to_set(&self.u));
        let reg = Re::seq([
            Re::lit(Template::call(self.c, self.o, self.w)),
            Re::lit(Template::call(self.c, self.o_mon, self.ok)),
        ]);
        Specification::new("Client", [self.c], alpha, TraceSet::prs(reg.star())).unwrap()
    }

    /// Example 5, `Client2`: refines `Client` by adding `OW` — but *after*
    /// the write, in the opposite order of `WriteAcc`.
    pub fn client2(&self) -> Specification {
        let alpha = self
            .client()
            .alphabet()
            .union(&EventPattern::call(self.c, self.o, self.ow).to_set(&self.u));
        let reg = Re::seq([
            Re::lit(Template::call(self.c, self.o, self.w)),
            Re::lit(Template::call(self.c, self.o_mon, self.ok)),
            Re::lit(Template::call(self.c, self.o, self.ow)),
        ]);
        Specification::new("Client2", [self.c], alpha, TraceSet::prs(reg.star())).unwrap()
    }

    /// Example 6, `RW2`: `RW` with communication restricted to the unique
    /// client `c` (`P(h) ≜ h/c = h`).
    ///
    /// With a single caller, the quantified `P_RW1 ∧ P_RW2 ∧ P` collapses
    /// to the plain regular protocol
    /// `[⟨c,o,OW⟩ [W|R]* CW | ⟨c,o,OR⟩ R* CR]*` — used here so that
    /// compositions of `RW2` stay on the exact automaton path.
    /// [`Paper::rw2_predicate`] keeps the literal three-conjunct form; the
    /// two are cross-validated in the integration tests.
    pub fn rw2(&self) -> Specification {
        let re = Re::alt([
            Re::seq([
                Re::lit(Template::call(self.c, self.o, self.ow)),
                Re::alt([
                    Re::lit(Template::call(self.c, self.o, self.w)),
                    Re::lit(Template::call(self.c, self.o, self.r)),
                ])
                .star(),
                Re::lit(Template::call(self.c, self.o, self.cw)),
            ]),
            Re::seq([
                Re::lit(Template::call(self.c, self.o, self.or_)),
                Re::lit(Template::call(self.c, self.o, self.r)).star(),
                Re::lit(Template::call(self.c, self.o, self.cr)),
            ]),
        ])
        .star();
        Specification::new("RW2", [self.o], self.rw().alphabet().clone(), TraceSet::prs(re))
            .unwrap()
    }

    /// The literal Example-6 definition of `RW2`:
    /// `P_RW1 ∧ P_RW2 ∧ (h/c = h)` as predicates.
    pub fn rw2_predicate(&self) -> Specification {
        let c = self.c;
        let only_c =
            TraceSet::predicate("h/c = h", move |h: &Trace| h.iter().all(|e| e.caller == c));
        let ts = TraceSet::conj([self.p_rw1(), self.p_rw2(), only_c]);
        Specification::new("RW2ₚ", [self.o], self.rw().alphabet().clone(), ts).unwrap()
    }

    /// A `Client` variant whose alphabet *does* contain `OW` without ever
    /// performing it — the "composition without projection" strawman the
    /// paper discusses after Example 4 (it deadlocks against `WriteAcc`).
    pub fn client_no_projection(&self) -> Specification {
        let alpha = self
            .client()
            .alphabet()
            .union(&EventPattern::call(self.c, self.o, self.ow).to_set(&self.u));
        let reg = Re::seq([
            Re::lit(Template::call(self.c, self.o, self.w)),
            Re::lit(Template::call(self.c, self.o_mon, self.ok)),
        ]);
        Specification::new("ClientNoProj", [self.c], alpha, TraceSet::prs(reg.star())).unwrap()
    }

    /// The interface specifications of Examples 1–6 over `o`, built
    /// once.  The automaton cache ([`pospec_core::DfaCache`]) keys
    /// regular backends by *content*, so re-deriving these specifications
    /// still hits — but the opaque predicate backends (`Read2`, `RW`)
    /// are keyed by closure identity, so batch checks should prefer one
    /// `Vec` from this method over per-query re-derivation.
    pub fn interface_specs(&self) -> Vec<Specification> {
        vec![self.read(), self.read2(), self.write(), self.rw(), self.write_acc(), self.rw2()]
    }

    /// Convenience: `⟨caller, callee, m⟩` event.
    pub fn ev(&self, caller: ObjectId, callee: ObjectId, m: MethodId) -> Event {
        Event::call(caller, callee, m)
    }

    /// Convenience: `⟨caller, callee, m(d0)⟩` event.
    pub fn evd(&self, caller: ObjectId, callee: ObjectId, m: MethodId) -> Event {
        Event::call_with(caller, callee, m, self.d0)
    }
}

impl Default for Paper {
    fn default() -> Self {
        Paper::new()
    }
}
