//! FAULT — the fault-injection campaign of EXPERIMENTS.md.
//!
//! Sweeps a grid of seeds × drop rates over the paper's running example:
//! every cell runs a supervised chaos simulation (one [`ChaosClient`]
//! per declared object, online monitors for each interface
//! specification) **twice** with identical inputs and asserts the two
//! runs agree byte for byte — the determinism contract of the
//! fault-injection layer, measured rather than assumed.

use crate::paper::Paper;
use pospec_sim::behaviors::ChaosClient;
use pospec_sim::{FaultPlan, FaultRates, RunConfig, SupervisedOutcome, SupervisedRun};

/// One grid cell of the campaign.
#[derive(Debug, Clone)]
pub struct CampaignCell {
    /// Scheduler and fault seed.
    pub seed: u64,
    /// Drop rate for this cell (‰).
    pub drop_rate: u32,
    /// Observable events the run produced.
    pub events: usize,
    /// Faults injected.
    pub faults: usize,
    /// Monitors that latched a violation.
    pub violations: usize,
    /// Why the run stopped (stable label).
    pub stop_reason: &'static str,
    /// Did the same-seed repeat agree exactly?
    pub deterministic: bool,
}

impl CampaignCell {
    /// The cell as a JSON object.
    pub fn to_json(&self) -> pospec_json::Value {
        pospec_json::ObjBuilder::new()
            .field("seed", self.seed)
            .field("drop_rate", self.drop_rate as u64)
            .field("events", self.events)
            .field("faults", self.faults)
            .field("violations", self.violations)
            .field("stop_reason", self.stop_reason)
            .field("deterministic", self.deterministic)
            .build()
    }
}

/// Aggregated campaign counters.
#[derive(Debug, Clone)]
pub struct CampaignSummary {
    /// Every grid cell, in sweep order.
    pub cells: Vec<CampaignCell>,
    /// Total runs executed (two per cell).
    pub runs: usize,
    /// Total faults injected across first runs.
    pub faults_injected: usize,
    /// Total violations latched across first runs.
    pub violations_latched: usize,
}

impl CampaignSummary {
    /// Did every cell's same-seed repeat reproduce exactly?
    pub fn all_deterministic(&self) -> bool {
        self.cells.iter().all(|c| c.deterministic)
    }

    /// The summary (with per-cell detail) as a JSON object — the
    /// `"sim"` key of `paper_report.json`.
    pub fn to_json(&self) -> pospec_json::Value {
        pospec_json::ObjBuilder::new()
            .field("runs", self.runs)
            .field("faults_injected", self.faults_injected)
            .field("violations_latched", self.violations_latched)
            .field("deterministic", self.all_deterministic())
            .field("cells", self.cells.iter().map(|c| c.to_json()).collect::<Vec<_>>())
            .build()
    }
}

/// One supervised chaos run over the paper world.
fn one_run(p: &Paper, seed: u64, plan: &FaultPlan, budget: usize) -> (SupervisedOutcome, String) {
    let mut sup = SupervisedRun::new(seed);
    let cast: Vec<_> =
        p.u.declared_objects()
            .chain(p.u.object_classes().flat_map(|c| p.u.class_witnesses(c)))
            .collect();
    for &obj in &cast {
        sup.add_object(Box::new(ChaosClient::new(obj, &p.u)));
    }
    for spec in p.interface_specs() {
        sup.add_monitor(spec);
    }
    let out = sup.run(&RunConfig::budget(budget).faults(plan.clone()));
    let bytes = out.run.fault_log.to_json(&p.u).to_compact();
    (out, bytes)
}

/// Run the seeds × drop-rates campaign; each cell is executed twice and
/// checked for exact same-seed reproduction.
pub fn fault_campaign(seeds: &[u64], drop_rates: &[u32], budget: usize) -> CampaignSummary {
    let p = Paper::new();
    let mut cells = Vec::new();
    let mut faults_injected = 0usize;
    let mut violations_latched = 0usize;
    for &seed in seeds {
        for &drop in drop_rates {
            let plan = FaultPlan::new(seed)
                .rates(FaultRates { drop, delay: drop / 2, ..FaultRates::default() })
                .expect("campaign rates stay in range");
            let (a, a_log) = one_run(&p, seed, &plan, budget);
            let (b, b_log) = one_run(&p, seed, &plan, budget);
            let deterministic = a_log == b_log
                && a.run.trace == b.run.trace
                && a.reports == b.reports
                && a.run.stop_reason == b.run.stop_reason;
            faults_injected += a.run.fault_log.len();
            violations_latched += a.violations();
            cells.push(CampaignCell {
                seed,
                drop_rate: drop,
                events: a.run.trace.len(),
                faults: a.run.fault_log.len(),
                violations: a.violations(),
                stop_reason: a.run.stop_reason.label(),
                deterministic,
            });
        }
    }
    CampaignSummary { runs: cells.len() * 2, cells, faults_injected, violations_latched }
}

/// The default grid used by `paper_report` and EXPERIMENTS.md: three
/// seeds × four drop rates (0‰, 100‰, 250‰, 500‰), 120-event budget.
pub fn default_campaign() -> CampaignSummary {
    fault_campaign(&[1, 7, 42], &[0, 100, 250, 500], 120)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn campaign_cells_reproduce_and_count() {
        let s = fault_campaign(&[3, 9], &[0, 300], 60);
        assert_eq!(s.cells.len(), 4);
        assert_eq!(s.runs, 8);
        assert!(s.all_deterministic(), "same-seed cells must reproduce");
        // The zero-rate cells inject nothing; the 300‰ cells must.
        for c in &s.cells {
            if c.drop_rate == 0 {
                assert_eq!(c.faults, 0, "seed {}: fault-free cell logged faults", c.seed);
            } else {
                assert!(c.faults > 0, "seed {}: lossy cell injected nothing", c.seed);
            }
        }
        assert!(s.faults_injected > 0);
        let json = s.to_json().to_compact();
        assert!(json.contains("\"deterministic\":true"), "{json}");
    }
}
