#![cfg_attr(not(test), deny(clippy::unwrap_used))]
//! CHAOS — the network-fault and restart campaign of EXPERIMENTS.md.
//!
//! Two legs, both fully deterministic from a seed:
//!
//! 1. **Fault injection.**  A [`ChaosProxy`] sits between a retrying
//!    [`Client`] and an in-process hardened server and mistreats traffic
//!    chunk by chunk — delaying, dropping the connection, or truncating
//!    a chunk mid-line before closing.  Every fate is a pure function of
//!    `(seed, connection, direction, chunk)`, the same SplitMix64
//!    discipline as the simulator's fault plans, so a failing campaign
//!    replays exactly.  The gate: across fault rates up to 10 %, every
//!    request ends in a **correct verdict or a structured error** —
//!    never a wrong verdict, and never a hang (the client's socket
//!    timeout plus a finite retry budget make hangs impossible by
//!    construction).
//!
//! 2. **Restart.**  A server cycle with `--cache-dir` builds the check
//!    matrix cold (write-through to the persistent store), shuts down,
//!    and a **fresh** server over the same directory answers the same
//!    matrix warm from disk.  The gate: identical verdicts, and the warm
//!    cycle's `dfa_hits + lift_hits` and `disk_hits` both positive —
//!    the automata really came from the store, not from a rebuild.

use std::io::{Read as _, Write as _};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use pospec_json::{ObjBuilder, Value};
use pospec_serve::{error_kind, response_ok, Client, RetryPolicy, Server, ServerConfig};

use crate::service::{SPEC_NAMES, SPEC_SOURCE};

/// Check depth of the campaign (same as the SERVE campaign).
pub const DEPTH: usize = 6;

/// Fault rates the campaign sweeps, in permil of chunks (0–10 %).
pub const FAULT_PERMIL: [u16; 4] = [0, 25, 50, 100];

/// SplitMix64 finalizer — duplicated from the simulator's fault plans
/// so the proxy stays dependency-free and byte-compatible in spirit.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Per-chunk fault probabilities in permil (out of 1000).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ChaosRates {
    /// Close both directions without forwarding the chunk.
    pub drop: u16,
    /// Forward a prefix of the chunk, then close mid-line.
    pub truncate: u16,
    /// Hold the chunk up to 25 ms before forwarding it intact.
    pub delay: u16,
}

impl ChaosRates {
    /// Split a total fault budget: a quarter drops, a quarter
    /// truncates, the rest delays.
    pub fn scaled(permil: u16) -> ChaosRates {
        ChaosRates { drop: permil / 4, truncate: permil / 4, delay: permil - 2 * (permil / 4) }
    }

    /// Sum of all fault probabilities.
    pub fn total(&self) -> u16 {
        self.drop + self.truncate + self.delay
    }
}

/// What the proxy decided to do with one chunk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Fate {
    Deliver,
    Delay(Duration),
    Truncate,
    Drop,
}

/// The seeded fate of chunk `chunk` of direction `dir` (0 = client →
/// server) on connection `conn` — a pure function, so a campaign replays.
fn chunk_fate(rates: ChaosRates, seed: u64, conn: u64, dir: u64, chunk: u64) -> Fate {
    let roll = mix(seed ^ mix((conn << 20) | (dir << 40) | chunk));
    let r = (roll % 1000) as u16;
    if r < rates.drop {
        Fate::Drop
    } else if r < rates.drop + rates.truncate {
        Fate::Truncate
    } else if r < rates.total() {
        Fate::Delay(Duration::from_millis(1 + (roll >> 10) % 25))
    } else {
        Fate::Deliver
    }
}

/// A deterministic fault-injecting TCP proxy.
///
/// Listens on an ephemeral local port and forwards every accepted
/// connection to `upstream`, one pump thread per direction, applying
/// [`chunk_fate`] to each read chunk.  Dropping the proxy stops the
/// accept loop; in-flight pump threads die with their sockets.
pub struct ChaosProxy {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<thread::JoinHandle<()>>,
}

impl ChaosProxy {
    /// Start proxying to `upstream` with the given fault rates.
    pub fn start(upstream: &str, rates: ChaosRates, seed: u64) -> std::io::Result<ChaosProxy> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let upstream = upstream.to_string();
        let accept_thread = thread::spawn(move || {
            let mut conn = 0u64;
            while !stop_flag.load(Ordering::SeqCst) {
                match listener.accept() {
                    Ok((down, _)) => {
                        let id = conn;
                        conn += 1;
                        let upstream = upstream.clone();
                        thread::spawn(move || proxy_connection(down, &upstream, rates, seed, id));
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        thread::sleep(Duration::from_millis(2));
                    }
                    Err(_) => break,
                }
            }
        });
        Ok(ChaosProxy { addr, stop, accept_thread: Some(accept_thread) })
    }

    /// The address clients should dial instead of the upstream.
    pub fn addr(&self) -> String {
        self.addr.to_string()
    }
}

impl Drop for ChaosProxy {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

fn proxy_connection(down: TcpStream, upstream: &str, rates: ChaosRates, seed: u64, conn: u64) {
    let Ok(up) = TcpStream::connect(upstream) else {
        let _ = down.shutdown(Shutdown::Both);
        return;
    };
    let _ = down.set_nodelay(true);
    let _ = up.set_nodelay(true);
    // Bound pump reads so a wedged peer cannot strand the thread.
    let _ = down.set_read_timeout(Some(Duration::from_secs(30)));
    let _ = up.set_read_timeout(Some(Duration::from_secs(30)));
    let (Ok(down_w), Ok(up_r)) = (down.try_clone(), up.try_clone()) else {
        return;
    };
    let forward = thread::spawn(move || pump(down, up, rates, seed, conn, 0));
    pump(up_r, down_w, rates, seed, conn, 1);
    let _ = forward.join();
}

/// Copy `src` to `dst` chunk by chunk under the fault plan.  Any fault
/// that damages a chunk closes **both** directions: a half-mangled
/// stream must look like a dead connection, not a quiet corruption.
fn pump(mut src: TcpStream, mut dst: TcpStream, rates: ChaosRates, seed: u64, conn: u64, dir: u64) {
    let mut chunk = 0u64;
    let mut buf = [0u8; 1024];
    loop {
        let n = match src.read(&mut buf) {
            Ok(0) | Err(_) => break,
            Ok(n) => n,
        };
        let fate = chunk_fate(rates, seed, conn, dir, chunk);
        chunk += 1;
        match fate {
            Fate::Deliver => {
                if dst.write_all(&buf[..n]).is_err() {
                    break;
                }
            }
            Fate::Delay(pause) => {
                thread::sleep(pause);
                if dst.write_all(&buf[..n]).is_err() {
                    break;
                }
            }
            Fate::Truncate => {
                let _ = dst.write_all(&buf[..n / 2]);
                break;
            }
            Fate::Drop => break,
        }
    }
    let _ = src.shutdown(Shutdown::Both);
    let _ = dst.shutdown(Shutdown::Both);
}

/// Outcome counts of one fault rate over the full check matrix.
#[derive(Debug, Clone)]
pub struct RateOutcome {
    /// Total chunk-fault probability, in permil.
    pub fault_permil: u16,
    /// Requests attempted (the ordered spec-pair matrix).
    pub requests: usize,
    /// Responses whose verdict matched the in-process checker.
    pub correct: usize,
    /// Structured protocol errors (a known `error.kind`).
    pub structured_errors: usize,
    /// Transport failures surviving the whole retry budget.
    pub transport_errors: usize,
    /// Responses with a *wrong* verdict — must stay zero.
    pub wrong: usize,
}

impl RateOutcome {
    /// This rate's row of the `CHAOS` report object.
    pub fn to_json(&self) -> Value {
        ObjBuilder::new()
            .field("fault_permil", u64::from(self.fault_permil))
            .field("requests", self.requests)
            .field("correct", self.correct)
            .field("structured_errors", self.structured_errors)
            .field("transport_errors", self.transport_errors)
            .field("wrong", self.wrong)
            .build()
    }
}

/// Cache counters of one serve cycle, read over the wire via `stats`.
#[derive(Debug, Clone, Copy, Default)]
struct CycleCache {
    dfa_hits: u64,
    lift_hits: u64,
    disk_hits: u64,
    disk_writes: u64,
}

/// Result of the kill-and-restart leg.
#[derive(Debug, Clone)]
pub struct RestartSummary {
    /// Ordered pairs checked per cycle.
    pub pairs: usize,
    /// Did the warm cycle reproduce the cold cycle's verdicts exactly?
    pub verdicts_identical: bool,
    /// Automata the cold cycle persisted to disk.
    pub cold_disk_writes: u64,
    /// Warm-cycle cache hits served from the persistent store.
    pub warm_disk_hits: u64,
    /// Warm-cycle DFA cache hits (disk-served hits included).
    pub warm_dfa_hits: u64,
    /// Warm-cycle lift cache hits (disk-served hits included).
    pub warm_lift_hits: u64,
}

impl RestartSummary {
    /// The restart acceptance gate: same verdicts, and the warm cycle
    /// demonstrably answered from disk.
    pub fn gates_pass(&self) -> bool {
        self.verdicts_identical
            && self.cold_disk_writes > 0
            && self.warm_disk_hits > 0
            && self.warm_dfa_hits + self.warm_lift_hits > 0
    }

    /// The `"restart"` object of the report documents.
    pub fn to_json(&self) -> Value {
        ObjBuilder::new()
            .field("pairs", self.pairs)
            .field("verdicts_identical", self.verdicts_identical)
            .field("cold_disk_writes", self.cold_disk_writes)
            .field("warm_disk_hits", self.warm_disk_hits)
            .field("warm_dfa_hits", self.warm_dfa_hits)
            .field("warm_lift_hits", self.warm_lift_hits)
            .field("gates_pass", self.gates_pass())
            .build()
    }
}

/// Aggregate result of both chaos legs.
#[derive(Debug, Clone)]
pub struct ChaosSummary {
    /// Seed every fault decision derives from.
    pub seed: u64,
    /// One outcome row per entry of [`FAULT_PERMIL`].
    pub rates: Vec<RateOutcome>,
    /// The kill-and-restart leg.
    pub restart: RestartSummary,
}

impl ChaosSummary {
    /// The combined acceptance gate: no wrong verdict at any fault
    /// rate, a clean zero-fault baseline, and a disk-warm restart.
    pub fn gates_pass(&self) -> bool {
        let no_lies = self.rates.iter().all(|r| r.wrong == 0);
        let baseline_clean = self
            .rates
            .iter()
            .find(|r| r.fault_permil == 0)
            .is_some_and(|r| r.correct == r.requests);
        no_lies && baseline_clean && self.restart.gates_pass()
    }

    /// The `"CHAOS"` object of `paper_report.json`.
    pub fn to_json(&self) -> Value {
        ObjBuilder::new()
            .field("seed", self.seed)
            .field("rates", self.rates.iter().map(RateOutcome::to_json).collect::<Vec<_>>())
            .field("restart", self.restart.to_json())
            .field("gates_pass", self.gates_pass())
            .build()
    }
}

fn check_request(concrete: &str, abstract_: &str) -> Value {
    ObjBuilder::new()
        .field("op", "check")
        .field("doc", "readers_writers")
        .field("concrete", concrete)
        .field("abstract", abstract_)
        .field("depth", DEPTH as u64)
        .build()
}

/// The matrix verdicts from the in-process checker — the oracle every
/// over-the-wire response is compared against.
fn reference_verdicts() -> Vec<bool> {
    let doc = pospec_lang::parse_document(SPEC_SOURCE).expect("paper spec parses");
    let mut out = Vec::new();
    for concrete in SPEC_NAMES {
        for abstract_ in SPEC_NAMES {
            let c = doc.spec(concrete).expect("spec");
            let a = doc.spec(abstract_).expect("spec");
            out.push(pospec_core::check_refinement(c, a, DEPTH).holds());
        }
    }
    out
}

/// The closed error-kind vocabulary of the wire protocol; anything else
/// in a failure response counts as *wrong*, not merely unlucky.
const KNOWN_ERROR_KINDS: [&str; 7] =
    ["bad_request", "parse", "not_found", "overloaded", "deadline", "shutting_down", "internal"];

fn load_paper_doc(client: &mut Client) {
    let load = ObjBuilder::new()
        .field("op", "load_spec")
        .field("name", "readers_writers")
        .field("source", SPEC_SOURCE)
        .build();
    let response = client.call(&load).expect("load_spec");
    assert!(response_ok(&response), "load_spec failed: {response:?}");
}

/// Run the fault-rate sweep: the full check matrix through the chaos
/// proxy at each rate of [`FAULT_PERMIL`], via a retrying client.
fn run_rates(seed: u64, reference: &[bool]) -> Vec<RateOutcome> {
    let config = ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        queue: 32,
        ..ServerConfig::default()
    };
    let server = Server::bind(&config).expect("bind ephemeral port");
    let addr = server.local_addr().expect("local addr").to_string();
    let handle = server.shutdown_handle();
    let serving = thread::spawn(move || server.serve());

    let mut direct = Client::connect(&addr).expect("connect");
    direct.set_timeout(Some(Duration::from_secs(30))).expect("timeout");
    load_paper_doc(&mut direct);
    drop(direct);

    let mut outcomes = Vec::new();
    for permil in FAULT_PERMIL {
        let proxy = ChaosProxy::start(&addr, ChaosRates::scaled(permil), seed ^ u64::from(permil))
            .expect("start proxy");
        let mut client = Client::connect(&proxy.addr()).expect("connect via proxy");
        // A finite socket timeout plus a finite retry budget: a hang is
        // impossible by construction, the strongest gate of the leg.
        client.set_timeout(Some(Duration::from_secs(5))).expect("timeout");
        let policy = RetryPolicy {
            attempts: 6,
            base: Duration::from_millis(5),
            cap: Duration::from_millis(100),
            seed,
        };
        let mut outcome = RateOutcome {
            fault_permil: permil,
            requests: 0,
            correct: 0,
            structured_errors: 0,
            transport_errors: 0,
            wrong: 0,
        };
        for (i, (concrete, abstract_)) in
            SPEC_NAMES.iter().flat_map(|c| SPEC_NAMES.iter().map(move |a| (*c, *a))).enumerate()
        {
            outcome.requests += 1;
            match client.call_retrying(&check_request(concrete, abstract_), &policy, false) {
                Ok(response) if response_ok(&response) => {
                    let holds = response
                        .get("result")
                        .and_then(|r| r.get("holds"))
                        .and_then(Value::as_bool);
                    if holds == Some(reference[i]) {
                        outcome.correct += 1;
                    } else {
                        outcome.wrong += 1;
                    }
                }
                Ok(response) => {
                    let known =
                        error_kind(&response).is_some_and(|k| KNOWN_ERROR_KINDS.contains(&k));
                    if known {
                        outcome.structured_errors += 1;
                    } else {
                        outcome.wrong += 1;
                    }
                }
                Err(_) => outcome.transport_errors += 1,
            }
        }
        outcomes.push(outcome);
    }

    handle.shutdown();
    serving.join().expect("serve thread").expect("serve result");
    outcomes
}

/// One serve cycle over `cache_dir`: fresh server, load the paper
/// document, run the matrix, read the cache counters, shut down.
fn serve_cycle(cache_dir: &Path) -> (Vec<bool>, CycleCache) {
    let config = ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        queue: 32,
        cache_dir: Some(cache_dir.to_path_buf()),
        ..ServerConfig::default()
    };
    let server = Server::bind(&config).expect("bind ephemeral port");
    let addr = server.local_addr().expect("local addr").to_string();
    let handle = server.shutdown_handle();
    let serving = thread::spawn(move || server.serve());

    let mut client = Client::connect(&addr).expect("connect");
    client.set_timeout(Some(Duration::from_secs(30))).expect("timeout");
    load_paper_doc(&mut client);
    let mut holds = Vec::new();
    for concrete in SPEC_NAMES {
        for abstract_ in SPEC_NAMES {
            let response = client.call(&check_request(concrete, abstract_)).expect("check");
            assert!(response_ok(&response), "cycle check failed: {response:?}");
            holds.push(
                response
                    .get("result")
                    .and_then(|r| r.get("holds"))
                    .and_then(Value::as_bool)
                    .expect("holds field"),
            );
        }
    }
    let stats = client.call(&ObjBuilder::new().field("op", "stats").build()).expect("stats");
    let counter = |name: &str| {
        stats
            .get("result")
            .and_then(|r| r.get("metrics"))
            .and_then(|m| m.get("cache"))
            .and_then(|c| c.get(name))
            .and_then(Value::as_u64)
            .unwrap_or_else(|| panic!("missing cache counter `{name}`"))
    };
    let cache = CycleCache {
        dfa_hits: counter("dfa_hits"),
        lift_hits: counter("lift_hits"),
        disk_hits: counter("disk_hits"),
        disk_writes: counter("disk_writes"),
    };
    drop(client);
    handle.shutdown();
    serving.join().expect("serve thread").expect("serve result");
    (holds, cache)
}

/// The restart leg alone: a cold cycle that persists its automata, then
/// a fresh server over the same directory answering warm from disk.
/// Write-through happens at build time, so the store survives even a
/// `kill -9` instead of this graceful shutdown (CI exercises that path).
pub fn run_restart(seed: u64) -> RestartSummary {
    let dir =
        std::env::temp_dir().join(format!("pospec-chaos-cache-{}-{seed:x}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let (cold_holds, cold) = serve_cycle(&dir);
    let (warm_holds, warm) = serve_cycle(&dir);
    let _ = std::fs::remove_dir_all(&dir);
    RestartSummary {
        pairs: cold_holds.len(),
        verdicts_identical: cold_holds == warm_holds,
        cold_disk_writes: cold.disk_writes,
        warm_disk_hits: warm.disk_hits,
        warm_dfa_hits: warm.dfa_hits,
        warm_lift_hits: warm.lift_hits,
    }
}

/// Run the whole campaign: the fault-rate sweep and the restart leg.
pub fn run_chaos(seed: u64) -> ChaosSummary {
    let reference = reference_verdicts();
    let rates = run_rates(seed, &reference);
    let restart = run_restart(seed);
    ChaosSummary { seed, rates, restart }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_fates_are_deterministic_and_rate_faithful() {
        let rates = ChaosRates::scaled(100);
        assert_eq!(rates.total(), 100);
        let a = chunk_fate(rates, 7, 3, 0, 11);
        let b = chunk_fate(rates, 7, 3, 0, 11);
        assert_eq!(a, b, "same coordinates, same fate");
        // At rate 0, every chunk is delivered untouched.
        for chunk in 0..200 {
            assert_eq!(chunk_fate(ChaosRates::default(), 7, 0, 0, chunk), Fate::Deliver);
        }
        // At full fault budget the sweep must actually injure chunks.
        let injured = (0..200)
            .filter(|&c| chunk_fate(ChaosRates::scaled(1000), 7, 0, 0, c) != Fate::Deliver)
            .count();
        assert_eq!(injured, 200, "rate 1000 permil must hit every chunk");
    }

    #[test]
    fn chaos_campaign_never_hangs_and_never_lies() {
        let summary = run_chaos(0xC4A0_5EED);
        for rate in &summary.rates {
            assert_eq!(rate.wrong, 0, "wrong verdicts at {} permil", rate.fault_permil);
            assert_eq!(rate.requests, 25);
        }
        let calm = &summary.rates[0];
        assert_eq!(calm.correct, calm.requests, "zero-fault baseline must be all-correct");
        assert!(summary.restart.gates_pass(), "restart gate failed: {:?}", summary.restart);
        assert!(summary.gates_pass());
    }
}
