//! Regenerate every reproduction row of EXPERIMENTS.md in one command:
//!
//! ```text
//! cargo run --release -p pospec-bench --bin paper_report
//! ```
//!
//! Prints the paper-vs-measured markdown table and writes
//! `paper_report.json` into the current directory.  The JSON document is
//! an object `{"rows": [...], "cache": {...}}`: one record per
//! reproduction row plus the process-wide automaton-cache counters
//! (hits, misses, nanoseconds spent building automata) described in
//! `EXPERIMENTS.md` §Performance.

use pospec_alphabet::internal_of_pair;
use pospec_bench::paper::Paper;
use pospec_check::report::{cache_stats_json, markdown_table, ExperimentRecord, Outcome};
use pospec_check::theorems;
use pospec_core::{
    check_all_pairs, check_refinement, compose, language_equiv, observable_deadlock,
    observable_equiv, DfaCache,
};
use pospec_trace::Trace;
use std::time::Instant;

const DEPTH: usize = 5;

fn main() {
    let p = Paper::new();
    let mut rows: Vec<ExperimentRecord> = Vec::new();

    // FIG1 — the event classification around two viewpoints.
    {
        let between = internal_of_pair(&p.u, p.o, p.c);
        let f = p.read().alphabet().clone();
        let g = p.write().alphabet().clone();
        let neither = between.difference(&f).difference(&g);
        rows.push(ExperimentRecord::reproduced(
            "FIG1",
            "composition hides events in neither alphabet (\"more than we can see\")",
            format!(
                "I(o,c) = {} granules; unseen-yet-hidden = {} granules, infinite = {}",
                between.granule_count(),
                neither.granule_count(),
                neither.is_infinite()
            ),
        ));
    }

    // EX1 — Read/Write well-formedness and protocol membership.
    {
        let write = p.write();
        let session = Trace::from_events(vec![
            p.ev(p.c, p.o, p.ow),
            p.evd(p.c, p.o, p.w),
            p.ev(p.c, p.o, p.cw),
        ]);
        let bare = Trace::from_events(vec![p.evd(p.c, p.o, p.w)]);
        let ok = write.contains_trace(&session) && !write.contains_trace(&bare);
        rows.push(ExperimentRecord {
            id: "EX1".into(),
            claim: "Read unrestricted; Write = bracketed exclusive sessions".into(),
            measured: format!(
                "session ∈ T(Write): {}; bare W ∈ T(Write): {}",
                write.contains_trace(&session),
                write.contains_trace(&bare)
            ),
            outcome: if ok { Outcome::Reproduced } else { Outcome::Failed },
        });
    }

    // EX2 — Read2 ⊑ Read.
    {
        let v = check_refinement(&p.read2(), &p.read(), DEPTH);
        rows.push(ExperimentRecord {
            id: "EX2".into(),
            claim: "Read2 refines Read (alphabet expansion)".into(),
            measured: format!("{v}"),
            outcome: if v.holds() { Outcome::Reproduced } else { Outcome::Failed },
        });
    }

    // EX3 — RW ⊑ Read, RW ⊑ Write, RW ⋢ Read2 with witness.
    {
        let rw = p.rw();
        let v1 = check_refinement(&rw, &p.read(), DEPTH);
        let v2 = check_refinement(&rw, &p.write(), DEPTH);
        let v3 = check_refinement(&rw, &p.read2(), DEPTH);
        let ok = v1.holds() && v2.holds() && !v3.holds();
        rows.push(ExperimentRecord {
            id: "EX3".into(),
            claim: "RW ⊑ Read, RW ⊑ Write, RW ⋢ Read2".into(),
            measured: format!(
                "⊑Read: {}; ⊑Write: {}; ⋢Read2 witness: {}",
                v1.holds(),
                v2.holds(),
                v3.counterexample().map(|t| t.to_string()).unwrap_or_default()
            ),
            outcome: if ok { Outcome::Reproduced } else { Outcome::Failed },
        });
    }

    // EX4 — projection avoids deadlock; observable = OK*.
    {
        let composed = compose(&p.write_acc(), &p.client()).unwrap();
        let okev = p.ev(p.c, p.o_mon, p.ok);
        let visible_ok = composed.contains_trace(&Trace::from_events(vec![okev; 3]));
        let no_deadlock = !observable_deadlock(&composed);
        let strawman = compose(&p.write_acc(), &p.client_no_projection()).unwrap();
        let strawman_deadlocks = observable_deadlock(&strawman);
        let ok = visible_ok && no_deadlock && strawman_deadlocks;
        rows.push(ExperimentRecord {
            id: "EX4".into(),
            claim: "T(Client‖WriteAcc) = ⟨c,o′,OK⟩* with projection; {ε} without".into(),
            measured: format!(
                "OK³ observable: {visible_ok}; deadlock: {}; no-projection strawman deadlocks: {strawman_deadlocks}",
                !no_deadlock
            ),
            outcome: if ok { Outcome::Reproduced } else { Outcome::Failed },
        });
    }

    // EX5 — refinement introduces deadlock.
    {
        let v = check_refinement(&p.client2(), &p.client(), DEPTH);
        let composed = compose(&p.client2(), &p.write_acc()).unwrap();
        let dead = observable_deadlock(&composed);
        let ok = v.holds() && dead;
        rows.push(ExperimentRecord {
            id: "EX5".into(),
            claim: "Client2 ⊑ Client yet T(Client2‖WriteAcc) = {ε}".into(),
            measured: format!("refines: {}; deadlocked: {dead}", v.holds()),
            outcome: if ok { Outcome::Reproduced } else { Outcome::Failed },
        });
    }

    // EX6 — harmonized abstraction levels.
    {
        let lhs = compose(&p.rw2(), &p.client()).unwrap();
        let rhs = compose(&p.write_acc(), &p.client()).unwrap();
        let eq = language_equiv(&lhs, &rhs, DEPTH);
        let v = check_refinement(&lhs, &rhs, DEPTH);
        let ok = eq && v.holds();
        rows.push(ExperimentRecord {
            id: "EX6".into(),
            claim: "T(RW2‖Client) = T(WriteAcc‖Client)".into(),
            measured: format!("trace sets equal: {eq}; Thm-7 refinement: {}", v.holds()),
            outcome: if ok { Outcome::Reproduced } else { Outcome::Failed },
        });
    }

    // PROP5 — self-composition identity on the paper's Write.
    {
        let write = p.write();
        let selfc = compose(&write, &write).unwrap();
        let ok = observable_equiv(&selfc, &write, DEPTH);
        rows.push(ExperimentRecord {
            id: "PROP5".into(),
            claim: "Γ‖Γ = Γ for interface specifications".into(),
            measured: format!("Write‖Write ≡ Write: {ok}"),
            outcome: if ok { Outcome::Reproduced } else { Outcome::Failed },
        });
    }

    // LIVE — quiescence analysis (the §9 liveness direction).
    {
        let live = compose(&p.write_acc(), &p.client()).unwrap();
        let r1 = pospec_check::quiescence(&live, DEPTH);
        let dead = compose(&p.client2(), &p.write_acc()).unwrap();
        let r2 = pospec_check::quiescence(&dead, DEPTH);
        let ok = r1.is_perpetual() && !r1.initial_quiescent && r2.initial_quiescent;
        rows.push(ExperimentRecord {
            id: "LIVE".into(),
            claim: "quiescence analysis: Ex.4 perpetual, Ex.5 initially quiescent".into(),
            measured: format!(
                "Ex.4 perpetual: {}; Ex.5 initial quiescence: {}",
                r1.is_perpetual(),
                r2.initial_quiescent
            ),
            outcome: if ok { Outcome::Reproduced } else { Outcome::Failed },
        });
    }

    // MORPH — §3's abstraction functions.
    {
        use pospec_alphabet::{EventPattern, UniverseBuilder};
        use pospec_core::{check_refinement_upto, Morphism, Specification, TraceSet};
        let mut b = UniverseBuilder::new();
        let clients = b.object_class("Clients").unwrap();
        let payload = b.data_class("Payload").unwrap();
        let server = b.object("server").unwrap();
        let put = b.method_with("put", payload).unwrap();
        let op = b.method("op").unwrap();
        b.class_witnesses(clients, 2).unwrap();
        b.data_witnesses(payload, 2).unwrap();
        let u = b.freeze();
        let conc = Specification::new(
            "Conc",
            [server],
            EventPattern::call(clients, server, put).to_set(&u),
            TraceSet::Universal,
        )
        .unwrap();
        let abs = Specification::new(
            "Abs",
            [server],
            EventPattern::call(clients, server, op).to_set(&u),
            TraceSet::Universal,
        )
        .unwrap();
        let plain = pospec_core::check_refinement(&conc, &abs, DEPTH).holds();
        let phi = Morphism::identity().forget_arg(put).rename_method(put, op);
        let upto = check_refinement_upto(&conc, &abs, &phi, DEPTH).holds();
        let ok = !plain && upto;
        rows.push(ExperimentRecord {
            id: "MORPH".into(),
            claim: "abstraction functions bridge parameterised/parameterless signatures".into(),
            measured: format!("Def.-2: {plain}; ⊑_φ with put(d)↦op: {upto}"),
            outcome: if ok { Outcome::Reproduced } else { Outcome::Failed },
        });
    }

    // STAB — finitization stability across witness counts.
    {
        let verdicts = |k: usize| {
            let p = Paper::with_witnesses(k);
            [
                check_refinement(&p.read2(), &p.read(), DEPTH).holds(),
                check_refinement(&p.rw(), &p.write(), DEPTH).holds(),
                !check_refinement(&p.rw(), &p.read2(), DEPTH).holds(),
                observable_deadlock(&compose(&p.client2(), &p.write_acc()).unwrap()),
            ]
        };
        let v1 = verdicts(1);
        let v2 = verdicts(2);
        let v3 = verdicts(3);
        let ok = v1 == v2 && v2 == v3;
        rows.push(ExperimentRecord {
            id: "STAB".into(),
            claim: "trace-level verdicts stable under finitization width".into(),
            measured: format!("witness counts 1/2/3 agree: {ok}"),
            outcome: if ok { Outcome::Reproduced } else { Outcome::Failed },
        });
    }

    // TESTGEN — model-based covering suites close the loop with COV.
    {
        let write = p.write();
        let suite = pospec_check::transition_cover(&write, DEPTH);
        let cov = pospec_check::state_coverage(&write, &suite.traces, DEPTH);
        let members_ok = suite.traces.iter().all(|t| write.contains_trace(t));
        let ok = cov.is_complete() && members_ok && !suite.traces.is_empty();
        rows.push(ExperimentRecord {
            id: "TESTGEN".into(),
            claim: "generated transition-cover suites fully cover the model".into(),
            measured: format!(
                "{} traces covering {}/{} states, all valid members",
                suite.traces.len(),
                cov.visited,
                cov.total
            ),
            outcome: if ok { Outcome::Reproduced } else { Outcome::Failed },
        });
    }

    // BASE1 — the traditional fixed-alphabet baseline.
    {
        use pospec_core::check_traditional_refinement;
        let def2 = check_refinement(&p.read2(), &p.read(), DEPTH).holds();
        let baseline = check_traditional_refinement(&p.read2(), &p.read(), DEPTH).holds();
        let fixed_agree = {
            let a = check_refinement(&p.write_acc(), &p.write(), DEPTH).holds();
            let b = check_traditional_refinement(&p.write_acc(), &p.write(), DEPTH).holds();
            a == b
        };
        let ok = def2 && !baseline && fixed_agree;
        rows.push(ExperimentRecord {
            id: "BASE1".into(),
            claim: "Def. 2 strictly generalizes fixed-alphabet refinement".into(),
            measured: format!(
                "Read2⊑Read: Def.2 {def2} / baseline {baseline}; equal-alphabet verdicts coincide: {fixed_agree}"
            ),
            outcome: if ok { Outcome::Reproduced } else { Outcome::Failed },
        });
    }

    // CACHE — the memoized automaton cache against the uncached path,
    // on the full pairwise refinement matrix of the paper's
    // specifications (PERF3 of EXPERIMENTS.md).
    {
        let specs = p.interface_specs();
        let t0 = Instant::now();
        let mut plain = Vec::new();
        for c in &specs {
            for a in &specs {
                plain.push(check_refinement(c, a, DEPTH).holds());
            }
        }
        let uncached = t0.elapsed();
        let cache = DfaCache::new();
        let t1 = Instant::now();
        let cold = check_all_pairs(&cache, &specs, DEPTH);
        let cold_time = t1.elapsed();
        let t2 = Instant::now();
        let warm = check_all_pairs(&cache, &specs, DEPTH);
        let warm_time = t2.elapsed();
        let stats = cache.stats();
        let cold_flat: Vec<bool> =
            cold.iter().flat_map(|row| row.iter().map(|v| v.holds())).collect();
        let warm_flat: Vec<bool> =
            warm.iter().flat_map(|row| row.iter().map(|v| v.holds())).collect();
        let agree = cold_flat == plain && warm_flat == plain;
        let speedup = uncached.as_secs_f64() / warm_time.as_secs_f64().max(1e-9);
        let ok = agree && stats.hits() > 0 && warm_time < uncached;
        rows.push(ExperimentRecord {
            id: "CACHE".into(),
            claim: "memoized batch checking matches the uncached verdicts, faster".into(),
            measured: format!(
                "36-pair matrix: uncached {uncached:.2?}, cold {cold_time:.2?}, warm {warm_time:.2?} ({speedup:.1}x); {} hits / {} misses, {:.2?} building; minimized {} automata ({}→{} states); on-the-fly: {} checks, {} early exits, {} product states; verdicts agree: {agree}",
                stats.hits(),
                stats.misses(),
                stats.build_time(),
                stats.min_builds,
                stats.min_states_in,
                stats.min_states_out,
                stats.otf_checks,
                stats.otf_early_exits,
                stats.otf_explored,
            ),
            outcome: if ok { Outcome::Reproduced } else { Outcome::Failed },
        });
    }

    // FAULT — the fault-injection campaign: seeds × drop rates, each
    // cell run twice and checked for same-seed reproduction.
    let sim = pospec_bench::campaign::default_campaign();
    {
        let ok = sim.all_deterministic() && sim.faults_injected > 0;
        rows.push(ExperimentRecord {
            id: "FAULT".into(),
            claim: "same-seed fault-injected runs reproduce exactly".into(),
            measured: format!(
                "{} runs over {} cells: {} faults injected, {} violations latched, all deterministic: {}",
                sim.runs,
                sim.cells.len(),
                sim.faults_injected,
                sim.violations_latched,
                sim.all_deterministic()
            ),
            outcome: if ok { Outcome::Reproduced } else { Outcome::Failed },
        });
    }

    // SERVE — the resident service: the same pair matrix checked twice
    // over TCP, warm pass answered from the shared automaton cache.
    // Gated on verdict agreement and cache hits, not on timing.
    let serve = pospec_bench::service::run();
    {
        let ok = serve.verdicts_agree && serve.warm_dfa_hits > 0;
        rows.push(ExperimentRecord {
            id: "SERVE".into(),
            claim: "the resident service answers warm checks from the shared cache".into(),
            measured: format!(
                "{} pairs over TCP: cold {:.2?} (p50 {:.2?}), warm {:.2?} (p50 {:.2?}, {:.1}x); {} warm DFA hits; verdicts match in-process checker: {}",
                serve.pairs,
                serve.cold,
                serve.cold_p50,
                serve.warm,
                serve.warm_p50,
                serve.speedup(),
                serve.warm_dfa_hits,
                serve.verdicts_agree,
            ),
            outcome: if ok { Outcome::Reproduced } else { Outcome::Failed },
        });
    }

    // CHAOS — hardened I/O under a deterministic fault-injecting proxy,
    // plus the crash-safe persistent cache across a service restart.
    let chaos = pospec_bench::chaos::run_chaos(0xC4A0_5EED);
    {
        let wrong: usize = chaos.rates.iter().map(|r| r.wrong).sum();
        let worst = chaos.rates.iter().map(|r| r.fault_permil).max().unwrap_or(0);
        let ok = chaos.gates_pass();
        rows.push(ExperimentRecord {
            id: "CHAOS".into(),
            claim: "verdicts survive network faults and a service restart".into(),
            measured: format!(
                "fault rates up to {worst}‰: {} requests, {wrong} wrong verdict(s), 0 hangs (by construction); restart: verdicts identical: {}, warm disk hits: {}",
                chaos.rates.iter().map(|r| r.requests).sum::<usize>(),
                chaos.restart.verdicts_identical,
                chaos.restart.warm_disk_hits,
            ),
            outcome: if ok { Outcome::Reproduced } else { Outcome::Failed },
        });
    }

    // SCALE — generated known-answer networks at three orders of
    // magnitude: every checker verdict must equal the expectation the
    // generator fixed at construction time, and the warm pass must be
    // answered from the cache.
    let scale = pospec_bench::scale::run_scale(&[10, 100, 1000]);
    {
        let ok = scale.gates_pass();
        rows.push(ExperimentRecord {
            id: "SCALE".into(),
            claim: "generated networks check correctly at N = 10/100/1000".into(),
            measured: scale.summary(),
            outcome: if ok { Outcome::Reproduced } else { Outcome::Failed },
        });
    }

    // WAITFOR — the O(edges) wait-for-graph deadlock pass (P110)
    // against the exact product-DFA pass (P105) on generated ring
    // networks: every immediately-deadlocking composition must be
    // flagged by both, with the static pass paying nothing for
    // automata.
    {
        use pospec_gen::{generate, Family, GenConfig};
        let mut cells = Vec::new();
        let mut agree = true;
        let mut flagged_everywhere = true;
        for n in [10usize, 100, 1000] {
            // Full mutation density: every edge carries a mutation, so
            // the rotation places ContraryOrder (deadlock) edges at
            // every size.
            let config = GenConfig::new(Family::Ring, n, 8).with_mutation_permille(1000);
            let scenario = generate(&config).expect("valid config generates");
            let t = pospec_lint::time_deadlock_passes(
                &scenario.document,
                pospec_bench::scale::SCALE_DEPTH,
            )
            .expect("generated documents parse and elaborate");
            agree &= t.agree();
            flagged_everywhere &= !t.waitfor_flagged.is_empty();
            cells.push(format!(
                "N={n}: {}/{} deadlocked, wait-for {:.2}ms vs product {:.2}ms ({:.0}x)",
                t.waitfor_flagged.len(),
                t.compositions,
                t.waitfor_nanos as f64 / 1e6,
                t.product_nanos as f64 / 1e6,
                t.product_nanos as f64 / t.waitfor_nanos.max(1) as f64,
            ));
        }
        let ok = agree && flagged_everywhere;
        rows.push(ExperimentRecord {
            id: "WAITFOR".into(),
            claim: "wait-for-graph pass equals the product-DFA pass on immediate deadlocks".into(),
            measured: format!("{}; passes agree: {agree}", cells.join("; ")),
            outcome: if ok { Outcome::Reproduced } else { Outcome::Failed },
        });
    }

    // The mechanized meta-theory (PVS substitute).
    println!("running the mechanized meta-theory (seed 2026, 60 instances each)…");
    for outcome in theorems::run_all(2026, 60) {
        rows.push(ExperimentRecord {
            id: outcome
                .name
                .split_whitespace()
                .take(2)
                .collect::<Vec<_>>()
                .join("")
                .replace(['(', ')'], ""),
            claim: outcome.name.clone(),
            measured: format!(
                "{} instances checked, {} skipped, {} violations",
                outcome.instances,
                outcome.skipped,
                outcome.violations.len()
            ),
            outcome: if outcome.holds() { Outcome::Reproduced } else { Outcome::Failed },
        });
    }

    println!("\n{}", markdown_table(&rows));
    let global = DfaCache::global().stats();
    let doc = pospec_json::ObjBuilder::new()
        .field("rows", rows.iter().map(|r| r.to_json()).collect::<Vec<_>>())
        .field("cache", cache_stats_json(&global))
        .field("sim", sim.to_json())
        .field("serve", serve.to_json())
        .field("CHAOS", chaos.to_json())
        .field("scale", scale.to_json())
        .build();
    std::fs::write("paper_report.json", doc.to_pretty()).expect("writable cwd");
    println!(
        "wrote paper_report.json ({} rows; global cache: {} hits / {} misses, {:.2?} building)",
        rows.len(),
        global.hits(),
        global.misses(),
        global.build_time(),
    );

    let failed = rows.iter().filter(|r| r.outcome == Outcome::Failed).count();
    if failed > 0 {
        eprintln!("{failed} row(s) FAILED");
        std::process::exit(1);
    }
}
