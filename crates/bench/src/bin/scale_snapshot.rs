//! Regenerate `BENCH_8.json` — the SCALE campaign over generated
//! known-answer networks at three orders of magnitude:
//!
//! ```text
//! cargo run --release -p pospec-bench --bin scale_snapshot
//! ```
//!
//! For each N ∈ {10, 100, 1000} the campaign generates a seeded ring
//! network with its verdict manifest, parses it, and batch-checks every
//! manifest pair cold then warm through one cache.  The gates are
//! correctness, not timing: every verdict must equal the
//! construction-time expectation and the warm pass must hit the cache.
//! Exit 1 when a gate fails.

use pospec_bench::scale::run_scale;

fn main() {
    let campaign = run_scale(&[10, 100, 1000]);
    println!("SCALE: {}", campaign.summary());
    std::fs::write("BENCH_8.json", format!("{}\n", campaign.to_json().to_pretty()))
        .expect("writable cwd");
    println!("wrote BENCH_8.json ({} points)", campaign.points.len());
    if !campaign.gates_pass() {
        eprintln!("SCALE gates FAILED");
        std::process::exit(1);
    }
}
