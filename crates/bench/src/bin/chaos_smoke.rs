//! Run the CHAOS campaign once and exit non-zero on a gate failure:
//!
//! ```text
//! cargo run --release -p pospec-bench --bin chaos_smoke
//! ```
//!
//! The campaign drives the paper's check matrix through a deterministic
//! fault-injecting TCP proxy at rates up to 10 % (gate: every request
//! ends in a correct verdict or a structured error — never a wrong
//! verdict, never a hang), then cycles a `--cache-dir` server twice to
//! prove a fresh process answers warm from the persistent store.

fn main() {
    let summary = pospec_bench::chaos::run_chaos(0xC4A0_5EED);
    for rate in &summary.rates {
        println!(
            "chaos {:>4}‰: {} requests → {} correct, {} structured error(s), {} transport error(s), {} wrong",
            rate.fault_permil,
            rate.requests,
            rate.correct,
            rate.structured_errors,
            rate.transport_errors,
            rate.wrong,
        );
    }
    let r = &summary.restart;
    println!(
        "restart: {} pairs, verdicts identical: {}; cold wrote {} automaton(s), warm served {} disk hit(s) ({} dfa + {} lift hits)",
        r.pairs,
        r.verdicts_identical,
        r.cold_disk_writes,
        r.warm_disk_hits,
        r.warm_dfa_hits,
        r.warm_lift_hits,
    );
    if !summary.gates_pass() {
        eprintln!("CHAOS gate failed: {}", summary.to_json().to_pretty());
        std::process::exit(1);
    }
    println!("CHAOS gates pass");
}
