//! Emit `BENCH_6.json`: the cold/warm automaton-cache rebuild snapshot.
//!
//! Runs the [`pospec_bench::cachebench`] campaign — the 36-pair paper
//! refinement matrix plus a lift sweep, cold on an empty cache and warm
//! with every specification re-derived from scratch — and writes the
//! counters (build nanos, lift hit/miss, minimization shrinkage,
//! on-the-fly early exits, matrix timings) to `BENCH_6.json` in the
//! current directory.
//!
//! Exits non-zero when an acceptance gate fails: the cold and warm
//! matrices must produce identical verdicts, warm lift hits must exceed
//! lift misses, and the warm phase must build fewer automata than cold.
//! The snapshot also carries a `"restart"` object — the kill-and-restart
//! cycle over the persistent on-disk cache, gated on a fresh process
//! answering warm from disk with identical verdicts.

use pospec_bench::cachebench::{cache_campaign, DEPTH};

fn main() {
    let campaign = cache_campaign(DEPTH);
    let restart = pospec_bench::chaos::run_restart(0x5EED);
    let mut doc = campaign.to_json();
    if let pospec_json::Value::Obj(fields) = &mut doc {
        fields.push(("restart".to_string(), restart.to_json()));
    }
    std::fs::write("BENCH_6.json", doc.to_pretty()).expect("writable cwd");
    println!(
        "wrote BENCH_6.json (depth {}): cold {:.2?} matrix / {} misses, warm {:.2?} matrix / {} lift hits vs {} lift misses; minimized {} automata ({} states removed); {} on-the-fly checks, {} early exits; verdicts agree: {}",
        campaign.depth,
        campaign.cold.matrix_time,
        campaign.cold.stats.misses(),
        campaign.warm.matrix_time,
        campaign.warm.stats.lift_hits,
        campaign.warm.stats.lift_misses,
        campaign.cold.stats.min_builds + campaign.warm.stats.min_builds,
        campaign.cold.stats.min_states_removed() + campaign.warm.stats.min_states_removed(),
        campaign.cold.stats.otf_checks + campaign.warm.stats.otf_checks,
        campaign.cold.stats.otf_early_exits + campaign.warm.stats.otf_early_exits,
        campaign.verdicts_agree,
    );
    println!(
        "restart: verdicts identical: {}; cold wrote {} automaton(s), warm served {} disk hit(s)",
        restart.verdicts_identical, restart.cold_disk_writes, restart.warm_disk_hits,
    );
    if !campaign.gates_pass() || !restart.gates_pass() {
        eprintln!("BENCH_6 gate failed: {}", doc.to_pretty());
        std::process::exit(1);
    }
}
