//! CACHE2 — the cold/warm rebuild campaign behind `BENCH_6.json`.
//!
//! The automaton cache keys regular backends by *content*, so a caller
//! that rebuilds a structurally-equal specification from scratch (fresh
//! `Arc`s, fresh `EventSet`s over the same universe) must land on the
//! entries the first caller built.  This campaign measures exactly that:
//!
//! * **cold** — one fresh [`Paper`] fixture drives the full 36-pair
//!   refinement matrix through an empty [`DfaCache`], followed by a lift
//!   sweep (every abstract view lifted to every admissible concrete
//!   alphabet — the composition pipeline's workload);
//! * **warm** — the *same* fixture re-derives every specification
//!   (`interface_specs` builds fresh `Arc`s each call) and reruns both.
//!   Content-keyed backends hit; only the opaque predicate closures
//!   (fresh identities by nature) rebuild.
//!
//! The campaign gates on the PR-6 acceptance criteria: warm-phase lift
//! hits must exceed lift misses, the warm phase must build less than the
//! cold one, and the two verdict matrices must be identical.

use crate::paper::Paper;
use pospec_check::report::cache_stats_json;
use pospec_core::{check_all_pairs, refinement_conditions, CacheStats, DfaCache, Verdict};
use std::time::{Duration, Instant};

/// Predicate-trie depth used by the campaign (the repo-wide default of
/// the experiment suite).
pub const DEPTH: usize = 6;

/// Timings and counter deltas of one phase (cold or warm).
#[derive(Debug, Clone)]
pub struct CachePhase {
    /// Wall-clock time of the 36-pair refinement matrix.
    pub matrix_time: Duration,
    /// Wall-clock time of the lift sweep.
    pub lift_time: Duration,
    /// Cache counter deltas attributable to this phase.
    pub stats: CacheStats,
    /// Verdicts in the matrix that hold.
    pub holds: usize,
}

impl CachePhase {
    /// The phase as a JSON object.
    pub fn to_json(&self) -> pospec_json::Value {
        pospec_json::ObjBuilder::new()
            .field("matrix_nanos", self.matrix_time.as_nanos().min(u128::from(u64::MAX)) as u64)
            .field("lift_nanos", self.lift_time.as_nanos().min(u128::from(u64::MAX)) as u64)
            .field("holds", self.holds)
            .field("cache", cache_stats_json(&self.stats))
            .build()
    }
}

/// The full cold/warm campaign result.
#[derive(Debug, Clone)]
pub struct CacheCampaign {
    /// Predicate-trie depth used throughout.
    pub depth: usize,
    /// First pass: empty cache, fresh specifications.
    pub cold: CachePhase,
    /// Second pass: same cache, re-derived (content-equal) specifications.
    pub warm: CachePhase,
    /// Did the two matrices produce identical verdicts (counterexamples
    /// included)?
    pub verdicts_agree: bool,
}

impl CacheCampaign {
    /// The PR acceptance gates: identical verdicts, warm lift hits
    /// exceeding misses, and a warm phase that builds less than cold.
    pub fn gates_pass(&self) -> bool {
        self.verdicts_agree
            && self.warm.stats.lift_hits > self.warm.stats.lift_misses
            && self.warm.stats.misses() < self.cold.stats.misses()
    }

    /// The campaign as the `BENCH_6.json` document.
    pub fn to_json(&self) -> pospec_json::Value {
        pospec_json::ObjBuilder::new()
            .field("depth", self.depth)
            .field("cold", self.cold.to_json())
            .field("warm", self.warm.to_json())
            .field("verdicts_agree", self.verdicts_agree)
            .field("warm_lift_hits", self.warm.stats.lift_hits)
            .field("warm_lift_misses", self.warm.stats.lift_misses)
            .field("otf_checks", self.cold.stats.otf_checks + self.warm.stats.otf_checks)
            .field(
                "otf_early_exits",
                self.cold.stats.otf_early_exits + self.warm.stats.otf_early_exits,
            )
            .field("gates_pass", self.gates_pass())
            .build()
    }
}

/// Run one matrix + lift-sweep pass with freshly derived specifications.
fn run_phase(cache: &DfaCache, p: &Paper, depth: usize) -> (Vec<Vec<Verdict>>, CachePhase) {
    // `interface_specs` constructs new `Arc`s every call — this IS the
    // rebuild the content keys are meant to absorb.
    let specs = p.interface_specs();
    let before = cache.stats();
    let t = Instant::now();
    let matrix = check_all_pairs(cache, &specs, depth);
    let matrix_time = t.elapsed();
    let t = Instant::now();
    for c in &specs {
        for a in &specs {
            // The composition/morphism workload: the abstract view lifted
            // (inverse projection) to each admissible larger alphabet.
            if refinement_conditions(c, a).alphabet_ok {
                cache.lifted_dfa(c.universe(), a.trace_set(), a.alphabet(), c.alphabet(), depth);
            }
        }
    }
    let lift_time = t.elapsed();
    let stats = cache.stats().since(&before);
    let holds = matrix.iter().flatten().filter(|v| v.holds()).count();
    (matrix, CachePhase { matrix_time, lift_time, stats, holds })
}

/// The default campaign: cold then warm over the paper's six interface
/// specifications, through one shared cache.
pub fn cache_campaign(depth: usize) -> CacheCampaign {
    let cache = DfaCache::new();
    let p = Paper::new();
    let (cold_matrix, cold) = run_phase(&cache, &p, depth);
    let (warm_matrix, warm) = run_phase(&cache, &p, depth);
    CacheCampaign { depth, cold, warm, verdicts_agree: cold_matrix == warm_matrix }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn campaign_passes_its_own_gates() {
        let c = cache_campaign(4);
        assert!(c.verdicts_agree, "cold and warm matrices must agree");
        assert!(
            c.warm.stats.lift_hits > c.warm.stats.lift_misses,
            "rebuilt lifts must predominantly hit: {:?}",
            c.warm.stats
        );
        assert!(c.warm.stats.misses() < c.cold.stats.misses(), "warm phase must build less");
        assert!(c.gates_pass());
        let json = c.to_json();
        assert_eq!(json.get("gates_pass").and_then(pospec_json::Value::as_bool), Some(true));
    }
}
