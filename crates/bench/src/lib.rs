//! Shared fixtures for the benchmark harness, the experiment-report
//! binary, and the integration tests.
//!
//! * [`paper`] — the universe and specifications of the paper's running
//!   example (Examples 1–6);
//! * [`scale`] — parameterized universes and specifications for the
//!   performance sweeps (PERF1–PERF4 in EXPERIMENTS.md);
//! * [`campaign`] — the FAULT fault-injection campaign: seeds × drop
//!   rates over supervised chaos runs, with same-seed reproduction
//!   checked per cell;
//! * [`cachebench`] — the CACHE2 cold/warm rebuild campaign behind
//!   `BENCH_6.json`: content-keyed cache hits for re-derived
//!   specifications, minimization and on-the-fly inclusion counters;
//! * [`service`] — the SERVE campaign: cold-vs-warm refinement checks
//!   against an in-process `pospec-serve` instance over real TCP;
//! * [`chaos`] — the CHAOS campaign: a deterministic fault-injecting
//!   TCP proxy between a retrying client and the hardened server, plus
//!   the kill-and-restart cycle over the persistent automaton cache.

pub mod cachebench;
pub mod campaign;
pub mod chaos;
pub mod paper;
pub mod scale;
pub mod service;
