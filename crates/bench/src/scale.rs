//! Parameterized inputs for the performance sweeps.
//!
//! The paper has no performance evaluation, so these sweeps characterize
//! the *engine itself*: how the exact decision procedures scale with the
//! size of the finitization (witness count), the size of the protocol
//! (regex blocks), and the number of objects in the granule algebra.

use pospec_alphabet::{EventPattern, EventSet, Universe};
use pospec_core::{Specification, TraceSet};
use pospec_regex::{Re, Template, VarId};
use pospec_trace::{ClassId, MethodId, ObjectId, Trace};
use std::sync::Arc;

/// A scalable world: one server, an environment class with `witnesses`
/// inhabitants, and `n_methods` parameterless methods.
pub struct ScaledWorld {
    /// The frozen universe.
    pub u: Arc<Universe>,
    /// The server object.
    pub server: ObjectId,
    /// The environment class.
    pub env: ClassId,
    /// The declared methods.
    pub methods: Vec<MethodId>,
}

impl ScaledWorld {
    /// Build with the given finitization width and method count.
    ///
    /// The universe shape is shared with the scenario generator:
    /// [`pospec_gen::world::build_world`] is the single source of truth
    /// for the `Env`-class/objects/methods layout, so the bench sweeps
    /// and the generated known-answer networks measure the same worlds.
    pub fn new(witnesses: usize, n_methods: usize) -> ScaledWorld {
        let method_names: Vec<String> = (0..n_methods).map(|i| format!("m{i}")).collect();
        let method_refs: Vec<&str> = method_names.iter().map(String::as_str).collect();
        let w = pospec_gen::world::build_world(witnesses, &["server"], &method_refs)
            .expect("canonical world builds");
        ScaledWorld { u: w.u, server: w.objects[0], env: w.env, methods: w.methods }
    }

    /// The alphabet of all declared methods called on the server.
    pub fn alphabet(&self) -> EventSet {
        self.methods.iter().fold(EventSet::empty(&self.u), |acc, &m| {
            acc.union(&EventPattern::call(self.env, self.server, m).to_set(&self.u))
        })
    }

    /// A session protocol with `blocks` sequential bracketed phases:
    /// `[m0 m1* m0 | m2 m3* m2 | …]*` with per-iteration caller binding.
    /// Larger `blocks` ⇒ larger NFA ⇒ larger DFA.
    pub fn protocol(&self, blocks: usize) -> Specification {
        let x = VarId(0);
        let alts: Vec<Re> = (0..blocks)
            .map(|i| {
                let open = self.methods[(2 * i) % self.methods.len()];
                let body = self.methods[(2 * i + 1) % self.methods.len()];
                Re::seq([
                    Re::lit(Template::call(x, self.server, open)),
                    Re::lit(Template::call(x, self.server, body)).star(),
                    Re::lit(Template::call(x, self.server, open)),
                ])
            })
            .collect();
        let re = Re::alt(alts).bind(x, self.env).star();
        Specification::new(
            format!("Protocol{blocks}"),
            [self.server],
            self.alphabet(),
            TraceSet::prs(re),
        )
        .unwrap()
    }

    /// A strictly tighter variant of [`ScaledWorld::protocol`] — the same
    /// protocol with every starred body bounded by a counting predicate.
    pub fn tightened(&self, blocks: usize, max_len: usize) -> Specification {
        let base = self.protocol(blocks);
        let bound = TraceSet::predicate("bounded length", move |h: &Trace| h.len() <= max_len);
        Specification::new(
            format!("Tight{blocks}"),
            [self.server],
            base.alphabet().clone(),
            TraceSet::conj([base.trace_set().clone(), bound]),
        )
        .unwrap()
    }

    /// A chaotic client of the server over the same alphabet restricted
    /// to one method (for composition sweeps).
    pub fn client_view(&self, method_idx: usize) -> Specification {
        let m = self.methods[method_idx % self.methods.len()];
        Specification::new(
            format!("View{method_idx}"),
            [self.server],
            EventPattern::call(self.env, self.server, m).to_set(&self.u),
            TraceSet::Universal,
        )
        .unwrap()
    }
}

/// The ablation baseline of DESIGN.md §6.1: a naive pattern-list event
/// set supporting membership only.
///
/// Union is concatenation; difference, subset, emptiness-of-intersection
/// and infinity are **not computable** on this representation without
/// enumerating events — which is exactly why the granule algebra exists.
/// The `algebra/ablation-membership` bench compares the two on the one
/// operation both support.
pub struct NaivePatternSet {
    u: Arc<Universe>,
    patterns: Vec<pospec_alphabet::EventPattern>,
}

impl NaivePatternSet {
    /// Build from patterns.
    pub fn new(
        u: &Arc<Universe>,
        patterns: impl IntoIterator<Item = pospec_alphabet::EventPattern>,
    ) -> Self {
        NaivePatternSet { u: Arc::clone(u), patterns: patterns.into_iter().collect() }
    }

    fn obj_matches(&self, spec: pospec_alphabet::ObjSpec, o: pospec_trace::ObjectId) -> bool {
        match spec {
            pospec_alphabet::ObjSpec::Id(x) => x == o,
            pospec_alphabet::ObjSpec::Class(c) => self.u.class_of_object(o) == Some(c),
            pospec_alphabet::ObjSpec::Any => true,
        }
    }

    /// Membership of a concrete event (linear in the pattern count).
    pub fn contains(&self, e: &pospec_trace::Event) -> bool {
        self.patterns.iter().any(|p| {
            self.obj_matches(p.caller, e.caller)
                && self.obj_matches(p.callee, e.callee)
                && match p.method {
                    None => true,
                    Some(m) => {
                        e.method == m
                            && match p.arg {
                                pospec_alphabet::ArgSpec::Auto => true,
                                pospec_alphabet::ArgSpec::None => e.arg.is_none(),
                                pospec_alphabet::ArgSpec::Value(d) => e.arg.data() == Some(d),
                            }
                    }
                }
        })
    }

    /// Union (concatenation — duplicates retained, the naive trade-off).
    pub fn union(&mut self, other: impl IntoIterator<Item = pospec_alphabet::EventPattern>) {
        self.patterns.extend(other);
    }

    /// Pattern count.
    pub fn len(&self) -> usize {
        self.patterns.len()
    }

    /// Is the pattern list empty?  (Note: an *empty denotation* is not
    /// detectable in general — another ablation point.)
    pub fn is_empty(&self) -> bool {
        self.patterns.is_empty()
    }
}

/// Depth used by the SCALE campaign, matching the generated-oracle
/// suite and the service default.
pub const SCALE_DEPTH: usize = 6;

/// One measured point of the SCALE campaign: a generated ring network
/// of `objects` objects, parsed and batch-checked against its
/// construction-time manifest, cold then warm through one cache.
pub struct ScalePoint {
    /// Network size (objects in the ring).
    pub objects: usize,
    /// Specifications in the generated document.
    pub specs: usize,
    /// Refinement pairs checked (the manifest's entries).
    pub pairs: usize,
    /// Wall time generating the document + manifest.
    pub generate_ms: f64,
    /// Wall time parsing and elaborating the document.
    pub parse_ms: f64,
    /// Wall time of the cold batch check (empty cache).
    pub cold_ms: f64,
    /// Wall time of the warm re-check (same cache).
    pub warm_ms: f64,
    /// Cache hits scored by the warm pass alone.
    pub warm_hits: u64,
    /// Peak resident set (`VmHWM`) after the point, in KiB; 0 where
    /// `/proc/self/status` is unavailable.
    pub peak_rss_kb: u64,
    /// Every checker verdict equalled the manifest's expectation, cold
    /// and warm.
    pub verdicts_agree: bool,
}

impl ScalePoint {
    /// JSON record for `BENCH_8.json` / `paper_report.json`.
    pub fn to_json(&self) -> pospec_json::Value {
        pospec_json::ObjBuilder::new()
            .field("objects", self.objects)
            .field("specs", self.specs)
            .field("pairs", self.pairs)
            .field("generate_ms", self.generate_ms)
            .field("parse_ms", self.parse_ms)
            .field("cold_ms", self.cold_ms)
            .field("warm_ms", self.warm_ms)
            .field("warm_hits", self.warm_hits)
            .field("peak_rss_kb", self.peak_rss_kb)
            .field("verdicts_agree", self.verdicts_agree)
            .build()
    }
}

/// The full campaign: one [`ScalePoint`] per requested size.
pub struct ScaleCampaign {
    /// Points in input order.
    pub points: Vec<ScalePoint>,
}

impl ScaleCampaign {
    /// The campaign's correctness gates: every point's verdicts agree
    /// with its manifest and the warm pass actually hit the cache.
    pub fn gates_pass(&self) -> bool {
        !self.points.is_empty() && self.points.iter().all(|p| p.verdicts_agree && p.warm_hits > 0)
    }

    /// JSON document for `BENCH_8.json`.
    pub fn to_json(&self) -> pospec_json::Value {
        pospec_json::ObjBuilder::new()
            .field("points", self.points.iter().map(ScalePoint::to_json).collect::<Vec<_>>())
            .field("gates_pass", self.gates_pass())
            .build()
    }

    /// One-line summary per point, for logs and the paper report.
    pub fn summary(&self) -> String {
        self.points
            .iter()
            .map(|p| {
                format!(
                    "N={}: {} pairs cold {:.1}ms / warm {:.1}ms ({} hits), peak {} KiB, agree: {}",
                    p.objects,
                    p.pairs,
                    p.cold_ms,
                    p.warm_ms,
                    p.warm_hits,
                    p.peak_rss_kb,
                    p.verdicts_agree
                )
            })
            .collect::<Vec<_>>()
            .join("; ")
    }
}

fn expectation_matches(expect: &pospec_gen::ExpectRefine, v: &pospec_core::Verdict) -> bool {
    use pospec_core::{FailedCondition, Verdict};
    use pospec_gen::ExpectRefine;
    matches!(
        (expect, v),
        (ExpectRefine::Holds, Verdict::Holds { .. })
            | (ExpectRefine::FailsObjects, Verdict::Fails { reason: FailedCondition::Objects, .. })
            | (
                ExpectRefine::FailsAlphabet,
                Verdict::Fails { reason: FailedCondition::Alphabet, .. }
            )
            | (
                ExpectRefine::FailsTraces { .. },
                Verdict::Fails { reason: FailedCondition::Traces, .. }
            )
    )
}

fn peak_rss_kb() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("VmHWM:"))
                .and_then(|l| l.split_whitespace().nth(1))
                .and_then(|kb| kb.parse().ok())
        })
        .unwrap_or(0)
}

fn ms(d: std::time::Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

/// Run the SCALE campaign: for each size, generate a seeded ring
/// network with its known-answer manifest, parse it, and batch-check
/// every manifest pair cold then warm through one fresh cache,
/// asserting the verdicts equal the construction-time expectations.
pub fn run_scale(sizes: &[usize]) -> ScaleCampaign {
    use pospec_core::{check_refinement_batch, DfaCache};
    use std::time::Instant;

    let mut points = Vec::new();
    for &n in sizes {
        let config = pospec_gen::GenConfig::new(pospec_gen::Family::Ring, n, 8);
        let t0 = Instant::now();
        let scenario = pospec_gen::generate(&config).expect("valid config generates");
        let generate_ms = ms(t0.elapsed());

        let t1 = Instant::now();
        let doc =
            pospec_lang::parse_document(&scenario.document).expect("generated documents parse");
        let parse_ms = ms(t1.elapsed());

        let pairs: Vec<(&Specification, &Specification)> = scenario
            .manifest
            .refinements
            .iter()
            .map(|e| {
                (
                    doc.spec(&e.concrete).expect("manifest names a declared spec"),
                    doc.spec(&e.abstract_).expect("manifest names a declared spec"),
                )
            })
            .collect();

        let cache = DfaCache::new();
        let t2 = Instant::now();
        let cold = check_refinement_batch(&cache, &pairs, SCALE_DEPTH);
        let cold_ms = ms(t2.elapsed());
        let hits_after_cold = cache.stats().hits();
        let t3 = Instant::now();
        let warm = check_refinement_batch(&cache, &pairs, SCALE_DEPTH);
        let warm_ms = ms(t3.elapsed());
        let warm_hits = cache.stats().hits().saturating_sub(hits_after_cold);

        let verdicts_agree = scenario
            .manifest
            .refinements
            .iter()
            .zip(cold.iter().zip(&warm))
            .all(|(e, (c, w))| expectation_matches(&e.expect, c) && c.holds() == w.holds());

        points.push(ScalePoint {
            objects: n,
            specs: scenario.manifest.spec_count,
            pairs: pairs.len(),
            generate_ms,
            parse_ms,
            cold_ms,
            warm_ms,
            warm_hits,
            peak_rss_kb: peak_rss_kb(),
            verdicts_agree,
        });
    }
    ScaleCampaign { points }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pospec_core::check_refinement;

    #[test]
    fn scaled_world_builds_at_several_sizes() {
        for (w, m) in [(1, 2), (2, 4), (3, 6)] {
            let s = ScaledWorld::new(w, m);
            assert_eq!(s.u.class_witnesses(s.env).count(), w);
            assert_eq!(s.methods.len(), m);
            assert!(s.alphabet().is_infinite());
        }
    }

    #[test]
    fn protocols_are_well_formed_and_refinable() {
        let s = ScaledWorld::new(2, 6);
        let p = s.protocol(2);
        assert!(check_refinement(&p, &p, 4).holds());
        let t = s.tightened(2, 4);
        assert!(check_refinement(&t, &p, 4).holds(), "tightened refines base");
    }

    #[test]
    fn scale_campaign_gates_pass_at_a_small_size() {
        let campaign = run_scale(&[6]);
        assert_eq!(campaign.points.len(), 1);
        let p = &campaign.points[0];
        assert_eq!(p.objects, 6);
        assert!(p.pairs >= 6, "a 6-ring has at least one pair per edge");
        assert!(p.verdicts_agree, "checker must match the manifest");
        assert!(p.warm_hits > 0, "warm pass must hit the cache");
        assert!(campaign.gates_pass());
        let json = campaign.to_json();
        assert_eq!(json.get("gates_pass").and_then(|v| v.as_bool()), Some(true));
        assert_eq!(json.get("points").and_then(|v| v.as_arr()).map(<[_]>::len), Some(1));
    }

    #[test]
    fn naive_pattern_set_membership_agrees_with_granules() {
        let s = ScaledWorld::new(2, 4);
        let patterns: Vec<pospec_alphabet::EventPattern> = s
            .methods
            .iter()
            .map(|&m| pospec_alphabet::EventPattern::call(s.env, s.server, m))
            .collect();
        let granule_set = s.alphabet();
        let naive = NaivePatternSet::new(&s.u, patterns);
        assert_eq!(naive.len(), 4);
        assert!(!naive.is_empty());
        for e in EventSet::universal(&s.u).enumerate_concrete() {
            assert_eq!(
                naive.contains(&e),
                granule_set.contains(&e),
                "membership disagreement on {e}"
            );
        }
    }
}
