//! Parameterized inputs for the performance sweeps.
//!
//! The paper has no performance evaluation, so these sweeps characterize
//! the *engine itself*: how the exact decision procedures scale with the
//! size of the finitization (witness count), the size of the protocol
//! (regex blocks), and the number of objects in the granule algebra.

use pospec_alphabet::{EventPattern, EventSet, Universe, UniverseBuilder};
use pospec_core::{Specification, TraceSet};
use pospec_regex::{Re, Template, VarId};
use pospec_trace::{ClassId, MethodId, ObjectId, Trace};
use std::sync::Arc;

/// A scalable world: one server, an environment class with `witnesses`
/// inhabitants, and `n_methods` parameterless methods.
pub struct ScaledWorld {
    /// The frozen universe.
    pub u: Arc<Universe>,
    /// The server object.
    pub server: ObjectId,
    /// The environment class.
    pub env: ClassId,
    /// The declared methods.
    pub methods: Vec<MethodId>,
}

impl ScaledWorld {
    /// Build with the given finitization width and method count.
    pub fn new(witnesses: usize, n_methods: usize) -> ScaledWorld {
        let mut b = UniverseBuilder::new();
        let env = b.object_class("Env").unwrap();
        let server = b.object("server").unwrap();
        let methods = (0..n_methods).map(|i| b.method(&format!("m{i}")).unwrap()).collect();
        b.class_witnesses(env, witnesses).unwrap();
        b.method_witnesses(1).unwrap();
        ScaledWorld { u: b.freeze(), server, env, methods }
    }

    /// The alphabet of all declared methods called on the server.
    pub fn alphabet(&self) -> EventSet {
        self.methods.iter().fold(EventSet::empty(&self.u), |acc, &m| {
            acc.union(&EventPattern::call(self.env, self.server, m).to_set(&self.u))
        })
    }

    /// A session protocol with `blocks` sequential bracketed phases:
    /// `[m0 m1* m0 | m2 m3* m2 | …]*` with per-iteration caller binding.
    /// Larger `blocks` ⇒ larger NFA ⇒ larger DFA.
    pub fn protocol(&self, blocks: usize) -> Specification {
        let x = VarId(0);
        let alts: Vec<Re> = (0..blocks)
            .map(|i| {
                let open = self.methods[(2 * i) % self.methods.len()];
                let body = self.methods[(2 * i + 1) % self.methods.len()];
                Re::seq([
                    Re::lit(Template::call(x, self.server, open)),
                    Re::lit(Template::call(x, self.server, body)).star(),
                    Re::lit(Template::call(x, self.server, open)),
                ])
            })
            .collect();
        let re = Re::alt(alts).bind(x, self.env).star();
        Specification::new(
            format!("Protocol{blocks}"),
            [self.server],
            self.alphabet(),
            TraceSet::prs(re),
        )
        .unwrap()
    }

    /// A strictly tighter variant of [`ScaledWorld::protocol`] — the same
    /// protocol with every starred body bounded by a counting predicate.
    pub fn tightened(&self, blocks: usize, max_len: usize) -> Specification {
        let base = self.protocol(blocks);
        let bound = TraceSet::predicate("bounded length", move |h: &Trace| h.len() <= max_len);
        Specification::new(
            format!("Tight{blocks}"),
            [self.server],
            base.alphabet().clone(),
            TraceSet::conj([base.trace_set().clone(), bound]),
        )
        .unwrap()
    }

    /// A chaotic client of the server over the same alphabet restricted
    /// to one method (for composition sweeps).
    pub fn client_view(&self, method_idx: usize) -> Specification {
        let m = self.methods[method_idx % self.methods.len()];
        Specification::new(
            format!("View{method_idx}"),
            [self.server],
            EventPattern::call(self.env, self.server, m).to_set(&self.u),
            TraceSet::Universal,
        )
        .unwrap()
    }
}

/// The ablation baseline of DESIGN.md §6.1: a naive pattern-list event
/// set supporting membership only.
///
/// Union is concatenation; difference, subset, emptiness-of-intersection
/// and infinity are **not computable** on this representation without
/// enumerating events — which is exactly why the granule algebra exists.
/// The `algebra/ablation-membership` bench compares the two on the one
/// operation both support.
pub struct NaivePatternSet {
    u: Arc<Universe>,
    patterns: Vec<pospec_alphabet::EventPattern>,
}

impl NaivePatternSet {
    /// Build from patterns.
    pub fn new(
        u: &Arc<Universe>,
        patterns: impl IntoIterator<Item = pospec_alphabet::EventPattern>,
    ) -> Self {
        NaivePatternSet { u: Arc::clone(u), patterns: patterns.into_iter().collect() }
    }

    fn obj_matches(&self, spec: pospec_alphabet::ObjSpec, o: pospec_trace::ObjectId) -> bool {
        match spec {
            pospec_alphabet::ObjSpec::Id(x) => x == o,
            pospec_alphabet::ObjSpec::Class(c) => self.u.class_of_object(o) == Some(c),
            pospec_alphabet::ObjSpec::Any => true,
        }
    }

    /// Membership of a concrete event (linear in the pattern count).
    pub fn contains(&self, e: &pospec_trace::Event) -> bool {
        self.patterns.iter().any(|p| {
            self.obj_matches(p.caller, e.caller)
                && self.obj_matches(p.callee, e.callee)
                && match p.method {
                    None => true,
                    Some(m) => {
                        e.method == m
                            && match p.arg {
                                pospec_alphabet::ArgSpec::Auto => true,
                                pospec_alphabet::ArgSpec::None => e.arg.is_none(),
                                pospec_alphabet::ArgSpec::Value(d) => e.arg.data() == Some(d),
                            }
                    }
                }
        })
    }

    /// Union (concatenation — duplicates retained, the naive trade-off).
    pub fn union(&mut self, other: impl IntoIterator<Item = pospec_alphabet::EventPattern>) {
        self.patterns.extend(other);
    }

    /// Pattern count.
    pub fn len(&self) -> usize {
        self.patterns.len()
    }

    /// Is the pattern list empty?  (Note: an *empty denotation* is not
    /// detectable in general — another ablation point.)
    pub fn is_empty(&self) -> bool {
        self.patterns.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pospec_core::check_refinement;

    #[test]
    fn scaled_world_builds_at_several_sizes() {
        for (w, m) in [(1, 2), (2, 4), (3, 6)] {
            let s = ScaledWorld::new(w, m);
            assert_eq!(s.u.class_witnesses(s.env).count(), w);
            assert_eq!(s.methods.len(), m);
            assert!(s.alphabet().is_infinite());
        }
    }

    #[test]
    fn protocols_are_well_formed_and_refinable() {
        let s = ScaledWorld::new(2, 6);
        let p = s.protocol(2);
        assert!(check_refinement(&p, &p, 4).holds());
        let t = s.tightened(2, 4);
        assert!(check_refinement(&t, &p, 4).holds(), "tightened refines base");
    }

    #[test]
    fn naive_pattern_set_membership_agrees_with_granules() {
        let s = ScaledWorld::new(2, 4);
        let patterns: Vec<pospec_alphabet::EventPattern> = s
            .methods
            .iter()
            .map(|&m| pospec_alphabet::EventPattern::call(s.env, s.server, m))
            .collect();
        let granule_set = s.alphabet();
        let naive = NaivePatternSet::new(&s.u, patterns);
        assert_eq!(naive.len(), 4);
        assert!(!naive.is_empty());
        for e in EventSet::universal(&s.u).enumerate_concrete() {
            assert_eq!(
                naive.contains(&e),
                granule_set.contains(&e),
                "membership disagreement on {e}"
            );
        }
    }
}
