//! SERVE — the resident-service campaign of EXPERIMENTS.md.
//!
//! Starts an in-process [`pospec_serve::Server`] on an ephemeral port,
//! registers the paper's running example, and drives the full ordered
//! pair matrix of refinement checks over the real TCP socket **twice**:
//! a cold pass that builds every automaton, then a warm pass answered
//! from the shared [`DfaCache`](pospec_core::DfaCache).  The campaign
//! records per-pass wall-clock latency and the cache's hit counters, and
//! checks the service verdicts against the in-process checker — the
//! correctness gate; the timing columns are reported, not gated, so the
//! row stays robust on loaded CI machines.

use std::thread;
use std::time::{Duration, Instant};

use pospec_json::{ObjBuilder, Value};
use pospec_serve::{response_ok, Client, Server, ServerConfig};

/// The readers/writers document the service campaign registers.
pub const SPEC_SOURCE: &str = include_str!("../../../specs/readers_writers.pos");

/// Specs whose ordered pairs form the check matrix.
pub const SPEC_NAMES: [&str; 5] = ["Read", "Write", "WriteAcc", "Client", "Client2"];

/// Aggregate result of the cold-then-warm service sweep.
#[derive(Debug, Clone)]
pub struct ServiceSummary {
    /// Ordered pairs checked per pass.
    pub pairs: usize,
    /// Wall-clock total of the cold pass (cache empty).
    pub cold: Duration,
    /// Wall-clock total of the warm pass (cache primed).
    pub warm: Duration,
    /// Median per-request latency of the cold pass.
    pub cold_p50: Duration,
    /// Median per-request latency of the warm pass.
    pub warm_p50: Duration,
    /// DFA cache hits accumulated by the warm pass.
    pub warm_dfa_hits: u64,
    /// Did both passes return identical verdicts, matching the
    /// in-process checker?
    pub verdicts_agree: bool,
    /// `holds` per pair (pass-1 order), for the report line.
    pub holds: Vec<bool>,
}

impl ServiceSummary {
    /// Warm-pass speedup over the cold pass (wall clock).
    pub fn speedup(&self) -> f64 {
        self.cold.as_secs_f64() / self.warm.as_secs_f64().max(1e-9)
    }

    /// The summary as a JSON object — the `"serve"` key of
    /// `paper_report.json`.
    pub fn to_json(&self) -> Value {
        ObjBuilder::new()
            .field("pairs", self.pairs)
            .field("cold_us", self.cold.as_micros() as u64)
            .field("warm_us", self.warm.as_micros() as u64)
            .field("cold_p50_us", self.cold_p50.as_micros() as u64)
            .field("warm_p50_us", self.warm_p50.as_micros() as u64)
            .field("speedup", self.speedup())
            .field("warm_dfa_hits", self.warm_dfa_hits)
            .field("verdicts_agree", self.verdicts_agree)
            .field("holding", self.holds.iter().filter(|h| **h).count())
            .build()
    }
}

fn check_request(concrete: &str, abstract_: &str) -> Value {
    ObjBuilder::new()
        .field("op", "check")
        .field("doc", "readers_writers")
        .field("concrete", concrete)
        .field("abstract", abstract_)
        .build()
}

fn dfa_hits(client: &mut Client) -> u64 {
    let stats = client.call(&ObjBuilder::new().field("op", "stats").build()).expect("stats");
    stats
        .get("result")
        .and_then(|r| r.get("metrics"))
        .and_then(|m| m.get("cache"))
        .and_then(|c| c.get("dfa_hits"))
        .and_then(Value::as_u64)
        .expect("dfa_hits counter")
}

/// One pass over every ordered spec pair; returns (total, p50, holds).
fn pass(client: &mut Client) -> (Duration, Duration, Vec<bool>) {
    let mut latencies = Vec::new();
    let mut holds = Vec::new();
    let started = Instant::now();
    for concrete in SPEC_NAMES {
        for abstract_ in SPEC_NAMES {
            let t0 = Instant::now();
            let response = client.call(&check_request(concrete, abstract_)).expect("check");
            latencies.push(t0.elapsed());
            assert!(response_ok(&response), "service check failed: {response:?}");
            let verdict = response
                .get("result")
                .and_then(|r| r.get("holds"))
                .and_then(Value::as_bool)
                .expect("holds field");
            holds.push(verdict);
        }
    }
    let total = started.elapsed();
    latencies.sort();
    (total, latencies[latencies.len() / 2], holds)
}

/// Run the cold-then-warm campaign against a private in-process server.
pub fn run() -> ServiceSummary {
    let config = ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        queue: 32,
        ..ServerConfig::default()
    };
    let server = Server::bind(&config).expect("bind ephemeral port");
    let addr = server.local_addr().expect("local addr").to_string();
    let handle = server.shutdown_handle();
    let serving = thread::spawn(move || server.serve());

    let mut client = Client::connect(&addr).expect("connect");
    client.set_timeout(Some(Duration::from_secs(120))).expect("timeout");
    let load = ObjBuilder::new()
        .field("op", "load_spec")
        .field("name", "readers_writers")
        .field("source", SPEC_SOURCE)
        .build();
    let response = client.call(&load).expect("load_spec");
    assert!(response_ok(&response), "load_spec failed: {response:?}");

    let hits_before = dfa_hits(&mut client);
    let (cold, cold_p50, cold_holds) = pass(&mut client);
    let (warm, warm_p50, warm_holds) = pass(&mut client);
    let warm_dfa_hits = dfa_hits(&mut client).saturating_sub(hits_before);

    // Reference verdicts from the in-process checker, same depth.
    let doc = pospec_lang::parse_document(SPEC_SOURCE).expect("paper spec parses");
    let mut reference = Vec::new();
    for concrete in SPEC_NAMES {
        for abstract_ in SPEC_NAMES {
            let c = doc.spec(concrete).expect("spec");
            let a = doc.spec(abstract_).expect("spec");
            reference.push(pospec_core::check_refinement(c, a, 6).holds());
        }
    }
    let verdicts_agree = cold_holds == reference && warm_holds == reference;

    handle.shutdown();
    serving.join().expect("serve thread").expect("serve result");

    ServiceSummary {
        pairs: SPEC_NAMES.len() * SPEC_NAMES.len(),
        cold,
        warm,
        cold_p50,
        warm_p50,
        warm_dfa_hits,
        verdicts_agree,
        holds: cold_holds,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn campaign_verdicts_agree_and_warm_pass_hits_the_cache() {
        let summary = run();
        assert_eq!(summary.pairs, 25);
        assert!(summary.verdicts_agree);
        assert!(summary.warm_dfa_hits > 0, "warm pass must be served from cache");
        let json = summary.to_json();
        assert_eq!(json.get("verdicts_agree"), Some(&Value::Bool(true)));
    }
}
