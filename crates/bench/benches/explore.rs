//! PERF2 — parallel vs. sequential bounded trace-space exploration.
//!
//! The threaded path parallelizes frontier expansion; this sweep measures
//! the speedup on the paper's `RW` specification (an opaque-predicate
//! trace set, the case exploration exists for).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pospec_bench::paper::Paper;
use pospec_check::{enumerate_spec_traces, Parallelism};
use std::hint::black_box;

fn bench_exploration(c: &mut Criterion) {
    let paper = Paper::new();
    let rw = paper.rw();
    let mut g = c.benchmark_group("explore/rw-members");
    g.sample_size(10);
    for depth in [3usize, 4, 5] {
        g.bench_with_input(BenchmarkId::new("sequential", depth), &depth, |b, &d| {
            b.iter(|| enumerate_spec_traces(black_box(&rw), d, Parallelism::Sequential).len())
        });
        g.bench_with_input(BenchmarkId::new("threads", depth), &depth, |b, &d| {
            b.iter(|| enumerate_spec_traces(black_box(&rw), d, Parallelism::Threads).len())
        });
    }
    g.finish();
}

fn bench_deadlock_analysis(c: &mut Criterion) {
    let paper = Paper::new();
    let mut g = c.benchmark_group("explore/deadlock");
    g.sample_size(10);
    // Re-compose inside the loop so the lazily-built composition automaton
    // is constructed each iteration (the cost being measured).
    g.bench_function("deadlocked-composition", |b| {
        b.iter(|| {
            let composed = pospec_core::compose(&paper.client2(), &paper.write_acc()).unwrap();
            assert!(pospec_core::observable_deadlock(black_box(&composed)));
        })
    });
    g.bench_function("live-composition", |b| {
        b.iter(|| {
            let live = pospec_core::compose(&paper.client(), &paper.write_acc()).unwrap();
            assert!(!pospec_core::observable_deadlock(black_box(&live)));
        })
    });
    g.finish();
}

criterion_group!(benches, bench_exploration, bench_deadlock_analysis);
criterion_main!(benches);
