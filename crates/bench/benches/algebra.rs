//! PERF3 — the exact granule algebra and `prs` membership.
//!
//! Ablation 1 of DESIGN.md §6: the granule sets pay a normalization cost
//! up front to make every Boolean operation and side-condition check
//! exact; this sweep shows those operations stay microseconds-cheap as
//! the universe grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pospec_alphabet::{internal_of_set, EventSet, UniverseBuilder};
use pospec_bench::paper::Paper;
use pospec_regex::{prs, CompiledRe, Re, Template, VarId};
use pospec_trace::{Event, ObjectId, Trace};
use std::collections::BTreeSet;
use std::hint::black_box;
use std::sync::Arc;

fn universe_with(n_objects: usize) -> (Arc<pospec_alphabet::Universe>, Vec<ObjectId>) {
    let mut b = UniverseBuilder::new();
    let env = b.object_class("Env").unwrap();
    let objs: Vec<ObjectId> = (0..n_objects).map(|i| b.object(&format!("o{i}")).unwrap()).collect();
    for i in 0..4 {
        b.method(&format!("m{i}")).unwrap();
    }
    b.class_witnesses(env, 2).unwrap();
    b.method_witnesses(1).unwrap();
    (b.freeze(), objs)
}

fn bench_set_operations(c: &mut Criterion) {
    let mut g = c.benchmark_group("algebra/set-ops");
    for n in [2usize, 4, 8, 16] {
        let (u, objs) = universe_with(n);
        let uni = EventSet::universal(&u);
        let half = uni.filter_granules(
            |gr| matches!(gr.caller, pospec_alphabet::ObjGranule::Named(o) if o.0 % 2 == 0),
        );
        g.bench_with_input(BenchmarkId::new("union", n), &n, |b, _| {
            b.iter(|| black_box(&uni).union(black_box(&half)))
        });
        g.bench_with_input(BenchmarkId::new("difference", n), &n, |b, _| {
            b.iter(|| black_box(&uni).difference(black_box(&half)))
        });
        g.bench_with_input(BenchmarkId::new("subset", n), &n, |b, _| {
            b.iter(|| black_box(&half).is_subset(black_box(&uni)))
        });
        let _ = objs;
    }
    g.finish();
}

fn bench_internal_events(c: &mut Criterion) {
    let mut g = c.benchmark_group("algebra/internal-of-set");
    for n in [2usize, 4, 8, 16] {
        let (u, objs) = universe_with(n);
        let set: BTreeSet<ObjectId> = objs.into_iter().collect();
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| internal_of_set(black_box(&u), black_box(&set)))
        });
    }
    g.finish();
}

fn bench_prs_membership(c: &mut Criterion) {
    let paper = Paper::new();
    let x = VarId(0);
    let re = Re::seq([
        Re::lit(Template::call(x, paper.o, paper.ow)),
        Re::lit(Template::call(x, paper.o, paper.w)).star(),
        Re::lit(Template::call(x, paper.o, paper.cw)),
    ])
    .bind(x, paper.objects)
    .star();
    let compiled = CompiledRe::new(re.clone());
    let mut g = c.benchmark_group("algebra/prs-membership");
    for len in [8usize, 32, 128, 512] {
        // A long valid trace: repeated complete sessions.
        let session = [
            Event::call(paper.c, paper.o, paper.ow),
            Event::call_with(paper.c, paper.o, paper.w, paper.d0),
            Event::call(paper.c, paper.o, paper.cw),
        ];
        let events: Vec<Event> = session.iter().copied().cycle().take(len).collect();
        let h = Trace::from_events(events);
        g.bench_with_input(BenchmarkId::new("compiled", len), &len, |b, _| {
            b.iter(|| compiled.prs(black_box(&paper.u), black_box(&h)))
        });
        g.bench_with_input(BenchmarkId::new("one-shot", len), &len, |b, _| {
            b.iter(|| prs(black_box(&paper.u), black_box(&h), black_box(&re)))
        });
    }
    g.finish();
}

fn bench_ablation_membership(c: &mut Criterion) {
    // ABL1 (DESIGN.md §6.1): granule-set membership vs. a naive
    // pattern-list baseline — the one operation both representations
    // support.  The granule set pays normalization once at construction;
    // the naive set re-matches every pattern per query and cannot decide
    // subset/difference/emptiness at all.
    use pospec_bench::scale::{NaivePatternSet, ScaledWorld};
    let mut g = c.benchmark_group("algebra/ablation-membership");
    for n_methods in [4usize, 16, 64] {
        let world = ScaledWorld::new(2, n_methods);
        let patterns: Vec<pospec_alphabet::EventPattern> = world
            .methods
            .iter()
            .map(|&m| pospec_alphabet::EventPattern::call(world.env, world.server, m))
            .collect();
        let granules = world.alphabet();
        let naive = NaivePatternSet::new(&world.u, patterns);
        let probe: Vec<Event> = granules.enumerate_concrete();
        g.bench_with_input(BenchmarkId::new("granule", n_methods), &n_methods, |b, _| {
            b.iter(|| probe.iter().filter(|e| granules.contains(e)).count())
        });
        g.bench_with_input(BenchmarkId::new("naive", n_methods), &n_methods, |b, _| {
            b.iter(|| probe.iter().filter(|e| naive.contains(e)).count())
        });
    }
    g.finish();
}

fn bench_composition_pipeline(c: &mut Criterion) {
    // The full compose → lift → product → erase pipeline on Example 4.
    let paper = Paper::new();
    let mut g = c.benchmark_group("algebra/composition");
    g.sample_size(10);
    g.bench_function("compose+automaton (Ex. 4)", |b| {
        b.iter(|| {
            let composed = pospec_core::compose(&paper.write_acc(), &paper.client()).unwrap();
            // Force the lazy automaton.
            let ok = Event::call(paper.c, paper.o_mon, paper.ok);
            assert!(composed.contains_trace(&Trace::from_events(vec![ok])));
            composed
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_set_operations,
    bench_internal_events,
    bench_prs_membership,
    bench_ablation_membership,
    bench_composition_pipeline
);
criterion_main!(benches);
