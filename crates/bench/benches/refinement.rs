//! PERF1 — scaling of the exact refinement decision procedure.
//!
//! Sweeps the two inputs that drive the automaton sizes: the width of the
//! finitization (witnesses per infinite granule) and the size of the
//! protocol (alternation blocks in the `prs` expression).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pospec_bench::scale::ScaledWorld;
use pospec_core::check_refinement;
use std::hint::black_box;

fn bench_witness_width(c: &mut Criterion) {
    let mut g = c.benchmark_group("refinement/witness-width");
    g.sample_size(20);
    for witnesses in [1usize, 2, 3, 4] {
        let world = ScaledWorld::new(witnesses, 6);
        let base = world.protocol(2);
        let tight = world.tightened(2, 6);
        g.bench_with_input(BenchmarkId::from_parameter(witnesses), &witnesses, |b, _| {
            b.iter(|| {
                let v = check_refinement(black_box(&tight), black_box(&base), 6);
                assert!(v.holds());
                v
            })
        });
    }
    g.finish();
}

fn bench_protocol_size(c: &mut Criterion) {
    let mut g = c.benchmark_group("refinement/protocol-blocks");
    g.sample_size(20);
    let world = ScaledWorld::new(2, 8);
    for blocks in [1usize, 2, 3, 4] {
        let base = world.protocol(blocks);
        let tight = world.tightened(blocks, 6);
        g.bench_with_input(BenchmarkId::from_parameter(blocks), &blocks, |b, _| {
            b.iter(|| {
                let v = check_refinement(black_box(&tight), black_box(&base), 6);
                assert!(v.holds());
                v
            })
        });
    }
    g.finish();
}

fn bench_exact_vs_failed(c: &mut Criterion) {
    // Failure with counterexample extraction vs. success: the failure path
    // must also stay cheap (it is the interactive-development hot path).
    let mut g = c.benchmark_group("refinement/verdict-path");
    g.sample_size(20);
    let world = ScaledWorld::new(2, 6);
    let base = world.protocol(2);
    let tight = world.tightened(2, 6);
    g.bench_function("holds", |b| {
        b.iter(|| check_refinement(black_box(&tight), black_box(&base), 6))
    });
    g.bench_function("fails-with-witness", |b| {
        b.iter(|| {
            let v = check_refinement(black_box(&base), black_box(&tight), 6);
            assert!(!v.holds());
            v
        })
    });
    g.finish();
}

criterion_group!(benches, bench_witness_width, bench_protocol_size, bench_exact_vs_failed);
criterion_main!(benches);
