//! One bench per reproduction row: regenerating FIG1 and EX1–EX6 from
//! scratch (the same computations `cargo run --bin paper_report` prints).

use criterion::{criterion_group, criterion_main, Criterion};
use pospec_alphabet::internal_of_pair;
use pospec_bench::paper::Paper;
use pospec_core::{
    check_refinement, compose, language_equiv, observable_deadlock, observable_equiv,
};
use pospec_trace::Trace;
use std::hint::black_box;

const DEPTH: usize = 5;

fn bench_fig1(c: &mut Criterion) {
    let p = Paper::new();
    c.bench_function("fig1/event-classification", |b| {
        b.iter(|| {
            let between = internal_of_pair(&p.u, p.o, p.c);
            let f = p.read().alphabet().clone();
            let g = p.write().alphabet().clone();
            let both = f.intersect(&g).intersect(&between);
            let neither = between.difference(&f).difference(&g);
            assert!(neither.is_infinite());
            (both.granule_count(), neither.granule_count())
        })
    });
}

fn bench_examples(c: &mut Criterion) {
    let p = Paper::new();
    let mut g = c.benchmark_group("examples");
    g.sample_size(10);

    g.bench_function("ex1/membership", |b| {
        let write = p.write();
        let session = Trace::from_events(vec![
            p.ev(p.c, p.o, p.ow),
            p.evd(p.c, p.o, p.w),
            p.ev(p.c, p.o, p.cw),
        ]);
        b.iter(|| {
            assert!(write.contains_trace(black_box(&session)));
        })
    });

    g.bench_function("ex2/read2-refines-read", |b| {
        let (read2, read) = (p.read2(), p.read());
        b.iter(|| {
            assert!(check_refinement(black_box(&read2), black_box(&read), DEPTH).holds());
        })
    });

    g.bench_function("ex3/rw-vs-three-viewpoints", |b| {
        let (rw, read, write, read2) = (p.rw(), p.read(), p.write(), p.read2());
        b.iter(|| {
            assert!(check_refinement(&rw, &read, DEPTH).holds());
            assert!(check_refinement(&rw, &write, DEPTH).holds());
            assert!(!check_refinement(&rw, &read2, DEPTH).holds());
        })
    });

    g.bench_function("ex4/composition-ok-star", |b| {
        b.iter(|| {
            let composed = compose(&p.write_acc(), &p.client()).unwrap();
            assert!(!observable_deadlock(&composed));
            composed
        })
    });

    g.bench_function("ex5/deadlock-by-refinement", |b| {
        b.iter(|| {
            let composed = compose(&p.client2(), &p.write_acc()).unwrap();
            assert!(observable_deadlock(&composed));
            composed
        })
    });

    g.bench_function("ex6/trace-set-equality", |b| {
        b.iter(|| {
            let lhs = compose(&p.rw2(), &p.client()).unwrap();
            let rhs = compose(&p.write_acc(), &p.client()).unwrap();
            assert!(language_equiv(&lhs, &rhs, DEPTH));
        })
    });

    g.bench_function("prop5/self-composition", |b| {
        let write = p.write();
        b.iter(|| {
            let selfc = compose(&write, &write).unwrap();
            assert!(observable_equiv(&selfc, &write, DEPTH));
        })
    });

    g.finish();
}

criterion_group!(benches, bench_fig1, bench_examples);
criterion_main!(benches);
