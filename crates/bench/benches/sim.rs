//! PERF4 — simulator throughput and online-monitor overhead.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use pospec_bench::paper::Paper;
use pospec_sim::behaviors::{PassiveServer, RwClient, RwMethods};
use pospec_sim::{DeterministicRuntime, Monitor};
use std::hint::black_box;

fn methods(p: &Paper) -> RwMethods {
    RwMethods { or_: p.or_, r: p.r, cr: p.cr, ow: p.ow, w: p.w, cw: p.cw }
}

const EVENTS: usize = 200;

fn run(p: &Paper, seed: u64) -> pospec_trace::Trace {
    let mut rt = DeterministicRuntime::new(seed);
    rt.add_object(Box::new(PassiveServer::new(p.o)));
    rt.add_object(Box::new(RwClient::new(p.c, p.o, methods(p), p.d0)));
    rt.add_object(Box::new(RwClient::new(p.env_obj(0), p.o, methods(p), p.d0)));
    rt.run(EVENTS)
}

fn bench_runtime_throughput(c: &mut Criterion) {
    let p = Paper::new();
    let mut g = c.benchmark_group("sim/deterministic-runtime");
    g.throughput(Throughput::Elements(EVENTS as u64));
    g.sample_size(20);
    let mut seed = 0u64;
    g.bench_function("run-200-events", |b| {
        b.iter(|| {
            seed += 1;
            run(black_box(&p), seed).len()
        })
    });
    g.finish();
}

fn bench_monitor_overhead(c: &mut Criterion) {
    let p = Paper::new();
    let trace = run(&p, 77);
    let mut g = c.benchmark_group("sim/monitor");
    g.throughput(Throughput::Elements(trace.len() as u64));
    g.sample_size(20);
    g.bench_function("offline-replay (per-caller RW)", |b| {
        b.iter(|| {
            let mut m = Monitor::new(p.read2());
            m.observe_trace(black_box(&trace))
        })
    });
    g.bench_function("offline-replay (regular Write)", |b| {
        b.iter(|| {
            let mut m = Monitor::new(p.write());
            m.observe_trace(black_box(&trace))
        })
    });
    g.finish();
}

fn bench_incremental_vs_batch(c: &mut Criterion) {
    // The RUNNER experiment: incremental NFA stepping (what Monitor uses)
    // vs. re-running full membership on every growing prefix (the naive
    // quadratic baseline) on a long protocol-abiding trace.
    let p = Paper::new();
    let write = p.write();
    // A long well-behaved single-caller trace: repeated sessions.
    let session = [
        pospec_trace::Event::call(p.c, p.o, p.ow),
        pospec_trace::Event::call_with(p.c, p.o, p.w, p.d0),
        pospec_trace::Event::call(p.c, p.o, p.cw),
    ];
    let events: Vec<pospec_trace::Event> = session.iter().copied().cycle().take(300).collect();
    let mut g = c.benchmark_group("sim/runner-ablation");
    g.throughput(Throughput::Elements(events.len() as u64));
    g.sample_size(10);
    g.bench_function("incremental", |b| {
        b.iter(|| {
            let mut r = write.trace_set().runner(write.universe());
            let mut ok = true;
            for e in &events {
                ok &= r.step(e);
            }
            assert!(ok);
        })
    });
    g.bench_function("batch-recheck", |b| {
        b.iter(|| {
            let mut seen = Vec::new();
            for e in &events {
                seen.push(*e);
                let t = pospec_trace::Trace::from_events(seen.clone());
                assert!(write.contains_trace(&t));
            }
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_runtime_throughput,
    bench_monitor_overhead,
    bench_incremental_vs_batch
);
criterion_main!(benches);
