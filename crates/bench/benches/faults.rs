//! FAULT — fault-injection overhead and campaign throughput.
//!
//! Measures (a) the per-run cost a fault plan adds to the deterministic
//! scheduler — the fault-free plan should be near-zero overhead since
//! decisions are keyed hashes, never RNG draws — and (b) whole
//! seeds × drop-rates campaign cells.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use pospec_bench::campaign::fault_campaign;
use pospec_bench::paper::Paper;
use pospec_sim::behaviors::ChaosClient;
use pospec_sim::{FaultPlan, FaultRates, RunConfig, SupervisedRun};
use std::hint::black_box;

const EVENTS: usize = 150;

fn supervised_run(p: &Paper, seed: u64, plan: &FaultPlan) -> usize {
    let mut sup = SupervisedRun::new(seed);
    for obj in
        p.u.declared_objects()
            .chain(p.u.object_classes().flat_map(|c| p.u.class_witnesses(c)))
            .collect::<Vec<_>>()
    {
        sup.add_object(Box::new(ChaosClient::new(obj, &p.u)));
    }
    for spec in p.interface_specs() {
        sup.add_monitor(spec);
    }
    let out = sup.run(&RunConfig::budget(EVENTS).faults(plan.clone()));
    out.run.trace.len() + out.run.fault_log.len()
}

fn bench_fault_overhead(c: &mut Criterion) {
    let p = Paper::new();
    let mut g = c.benchmark_group("faults/supervised-run");
    g.throughput(Throughput::Elements(EVENTS as u64));
    g.sample_size(20);
    let mut seed = 0u64;
    g.bench_function("fault-free-plan", |b| {
        b.iter(|| {
            seed += 1;
            supervised_run(black_box(&p), seed, &FaultPlan::new(seed))
        })
    });
    let mut seed2 = 0u64;
    g.bench_function("lossy-plan-250permille", |b| {
        b.iter(|| {
            seed2 += 1;
            let plan = FaultPlan::new(seed2)
                .rates(FaultRates { drop: 150, delay: 80, duplicate: 20, ..Default::default() })
                .expect("valid rates");
            supervised_run(black_box(&p), seed2, &plan)
        })
    });
    g.finish();
}

fn bench_campaign_cell(c: &mut Criterion) {
    let mut g = c.benchmark_group("faults/campaign");
    g.sample_size(10);
    g.bench_function("one-cell-two-runs", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            fault_campaign(black_box(&[seed]), &[250], 80).runs
        })
    });
    g.finish();
}

criterion_group!(benches, bench_fault_overhead, bench_campaign_cell);
criterion_main!(benches);
