//! PERF4 — identity extraction on the trace hot path.
//!
//! `Trace::callers`/`Trace::objects` run once per membership query in
//! predicate trace sets, so bounded exploration calls them millions of
//! times.  They now return the inline [`pospec_trace::IdSet`] small-vec
//! instead of a freshly allocated `Vec`; this sweep keeps the cost
//! visible as trace length grows, and the guard benchmark asserts the
//! no-heap fast path is actually taken for the few-identity traces the
//! engine produces.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pospec_trace::{Event, MethodId, ObjectId, Trace};
use std::hint::black_box;

/// A trace of length `len` cycling through `distinct` caller identities
/// (all calling object 0), like the reader/writer histories the paper's
/// predicates inspect.
fn cyclic_trace(len: usize, distinct: u32) -> Trace {
    let callee = ObjectId(0);
    let events: Vec<Event> = (0..len)
        .map(|i| Event::call(ObjectId(1 + (i as u32 % distinct)), callee, MethodId(i as u32 % 3)))
        .collect();
    Trace::from_events(events)
}

fn bench_id_extraction(c: &mut Criterion) {
    let mut g = c.benchmark_group("trace/id-extraction");
    for len in [8usize, 64, 512] {
        let t = cyclic_trace(len, 4);
        g.bench_with_input(BenchmarkId::new("callers", len), &len, |b, _| {
            b.iter(|| black_box(&t).callers())
        });
        g.bench_with_input(BenchmarkId::new("objects", len), &len, |b, _| {
            b.iter(|| black_box(&t).objects())
        });
    }
    g.finish();
}

/// Guard: the workloads above must resolve entirely in inline storage.
/// A regression that reintroduces per-call heap allocation flips
/// `spilled()` (or slows the sweep above) and is caught here without
/// needing an allocator hook.
fn bench_inline_guard(c: &mut Criterion) {
    let t = cyclic_trace(512, 4);
    assert!(!t.callers().spilled(), "guard: callers must stay inline");
    assert!(!t.objects().spilled(), "guard: objects must stay inline");
    c.bench_function("trace/id-extraction/guard-inline", |b| {
        b.iter(|| {
            let ids = black_box(&t).objects();
            assert!(!ids.spilled());
            ids.len()
        })
    });
}

criterion_group!(benches, bench_id_extraction, bench_inline_guard);
criterion_main!(benches);
