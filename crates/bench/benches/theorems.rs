//! Meta-theory fuzzing throughput: instances of the paper's theorems
//! validated per second (the cost of the PVS-substitute).

use criterion::{criterion_group, criterion_main, Criterion};
use pospec_check::theorems;
use std::hint::black_box;

fn bench_theorem_instances(c: &mut Criterion) {
    let mut g = c.benchmark_group("theorems");
    g.sample_size(10);
    g.bench_function("property-5 ×5", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let o = theorems::property_5(black_box(seed), 5);
            assert!(o.holds());
            o.instances
        })
    });
    g.bench_function("theorem-7 ×5", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let o = theorems::theorem_7(black_box(seed), 5);
            assert!(o.holds());
            o.instances
        })
    });
    g.bench_function("theorem-16 ×5", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let o = theorems::theorem_16(black_box(seed), 5);
            assert!(o.holds());
            o.instances
        })
    });
    g.bench_function("lemma-15 ×5", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let o = theorems::lemma_15(black_box(seed), 5);
            assert!(o.holds());
            o.instances
        })
    });
    g.finish();
}

criterion_group!(benches, bench_theorem_instances);
criterion_main!(benches);
